package dcol

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
)

// This file implements a live userspace multipath transport: the DCol data
// plane over real TCP sockets. The paper uses kernel MPTCP so that
// "unmodified applications may use this mechanism"; on a stock-Go testbed
// we provide the same semantics one layer up — a logical connection that
// stripes framed data across several subflows (the direct path plus any
// number of waypoint tunnels from DialVia), reorders at the receiver, and
// fails over when a subflow dies mid-transfer. The tcpsim model answers the
// protocol-dynamics questions; this code demonstrates the mechanism
// end-to-end on a commodity box.
//
// Wire format: each subflow starts with one handshake line
//
//	MPJOIN <sessionID> <subflowIndex>\n
//
// followed by frames of [seq uint64][len uint32][payload]. A frame length
// of 0 signals end-of-stream (sent on every subflow).

// Multipath errors.
var (
	ErrSessionClosed = errors.New("dcol: multipath session closed")
	ErrNoSubflows    = errors.New("dcol: multipath session has no subflows")
)

// mpFrameHeader is seq (8) + length (4).
const mpFrameHeader = 12

// DefaultFrameSize is the striping granularity.
const DefaultFrameSize = 16 << 10

func writeFrame(w io.Writer, seq uint64, payload []byte) error {
	var hdr [mpFrameHeader]byte
	binary.BigEndian.PutUint64(hdr[0:8], seq)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		_, err := w.Write(payload)
		return err
	}
	return nil
}

func readFrame(r io.Reader) (seq uint64, payload []byte, err error) {
	var hdr [mpFrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	seq = binary.BigEndian.Uint64(hdr[0:8])
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n == 0 {
		return seq, nil, nil
	}
	if n > 1<<24 {
		return 0, nil, fmt.Errorf("dcol: oversized frame %d", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return seq, payload, nil
}

// MultipathSender is the client end: Write stripes data across subflows.
type MultipathSender struct {
	mu        sync.Mutex
	subflows  []net.Conn
	nextSeq   uint64
	rr        int
	frameSize int
	closed    bool
	// SentBySubflow counts payload bytes per subflow index (diagnostics /
	// tests asserting that striping actually spread load).
	SentBySubflow []int64
}

// DialMultipath establishes a multipath session to a MultipathListener at
// addr: one direct subflow plus one subflow through each waypoint relay in
// relays (DialVia tunnels). sessionID must be unique per logical
// connection.
func DialMultipath(sessionID, addr string, relays []string) (*MultipathSender, error) {
	var conns []net.Conn
	fail := func(err error) (*MultipathSender, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	direct, err := net.Dial("tcp", addr)
	if err != nil {
		return fail(fmt.Errorf("dcol: direct subflow: %w", err))
	}
	conns = append(conns, direct)
	for _, relay := range relays {
		c, err := DialVia(relay, addr)
		if err != nil {
			return fail(fmt.Errorf("dcol: waypoint subflow via %s: %w", relay, err))
		}
		conns = append(conns, c)
	}
	for i, c := range conns {
		if _, err := fmt.Fprintf(c, "MPJOIN %s %d\n", sessionID, i); err != nil {
			return fail(err)
		}
	}
	return &MultipathSender{
		subflows:      conns,
		frameSize:     DefaultFrameSize,
		SentBySubflow: make([]int64, len(conns)),
	}, nil
}

// SetFrameSize tunes striping granularity (before the first Write).
func (m *MultipathSender) SetFrameSize(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > 0 {
		m.frameSize = n
	}
}

// Subflows returns the number of live subflows.
func (m *MultipathSender) Subflows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.subflows {
		if c != nil {
			n++
		}
	}
	return n
}

// Write stripes p across subflows in frames. A subflow write error fails
// the subflow over: its frame is retransmitted on the next live subflow
// (the receiver dedups by sequence number). Write fails only when every
// subflow is dead.
func (m *MultipathSender) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrSessionClosed
	}
	written := 0
	for off := 0; off < len(p); {
		end := off + m.frameSize
		if end > len(p) {
			end = len(p)
		}
		frame := p[off:end]
		seq := m.nextSeq
		if err := m.sendFrameLocked(seq, frame); err != nil {
			return written, err
		}
		m.nextSeq++
		off = end
		written += len(frame)
	}
	return written, nil
}

// sendFrameLocked tries live subflows round-robin until one accepts the
// frame.
func (m *MultipathSender) sendFrameLocked(seq uint64, frame []byte) error {
	attempts := 0
	for attempts < len(m.subflows) {
		idx := m.rr % len(m.subflows)
		m.rr++
		c := m.subflows[idx]
		if c == nil {
			attempts++
			continue
		}
		if err := writeFrame(c, seq, frame); err != nil {
			// Subflow died: withdraw it ("transparently recovering the
			// affected packets over the remaining subflows").
			c.Close()
			m.subflows[idx] = nil
			attempts++
			continue
		}
		m.SentBySubflow[idx] += int64(len(frame))
		return nil
	}
	return ErrNoSubflows
}

// FailSubflow forcefully kills one subflow (failure injection in tests).
func (m *MultipathSender) FailSubflow(idx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx >= 0 && idx < len(m.subflows) && m.subflows[idx] != nil {
		m.subflows[idx].Close()
		m.subflows[idx] = nil
	}
}

// Close signals end-of-stream on every live subflow and closes them.
func (m *MultipathSender) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	seq := m.nextSeq
	for _, c := range m.subflows {
		if c == nil {
			continue
		}
		_ = writeFrame(c, seq, nil) // end-of-stream marker; best effort
		c.Close()
	}
	return nil
}

// mpSession is the receiver-side reassembly state for one sessionID.
type mpSession struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buffered map[uint64][]byte
	nextSeq  uint64
	// endSeq is the end-of-stream sequence (data is complete once nextSeq
	// reaches it); ^0 until known.
	endSeq   uint64
	subflows int
	failed   bool
}

func newMPSession() *mpSession {
	s := &mpSession{buffered: make(map[uint64][]byte), endSeq: ^uint64(0)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// feed consumes frames from one subflow until EOF/error.
func (s *mpSession) feed(r io.Reader) {
	for {
		seq, payload, err := readFrame(r)
		if err != nil {
			s.mu.Lock()
			s.subflows--
			if s.subflows == 0 && s.endSeq == ^uint64(0) {
				// Every subflow died before end-of-stream: the transfer is
				// broken, wake the reader to report it.
				s.failed = true
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		if payload == nil {
			if s.endSeq == ^uint64(0) || seq < s.endSeq {
				s.endSeq = seq
			}
		} else if seq >= s.nextSeq {
			if _, dup := s.buffered[seq]; !dup {
				s.buffered[seq] = payload
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// ReadAll returns the fully reassembled, in-order byte stream.
func (s *mpSession) ReadAll() ([]byte, error) {
	var out []byte
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for {
			payload, ok := s.buffered[s.nextSeq]
			if !ok {
				break
			}
			delete(s.buffered, s.nextSeq)
			out = append(out, payload...)
			s.nextSeq++
		}
		if s.endSeq != ^uint64(0) && s.nextSeq >= s.endSeq {
			return out, nil
		}
		if s.failed {
			return out, io.ErrUnexpectedEOF
		}
		s.cond.Wait()
	}
}

// MultipathListener accepts multipath sessions: subflows carrying the same
// sessionID are reassembled into one logical stream, regardless of which
// path (direct or waypoint tunnel) each arrived over — the server-side
// obliviousness MPTCP provides in the paper.
type MultipathListener struct {
	ln net.Listener
	wg sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*mpSession
	arrivals chan *mpSession
	closed   bool
}

// ListenMultipath starts a listener on addr.
func ListenMultipath(addr string) (*MultipathListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &MultipathListener{
		ln:       ln,
		sessions: make(map[string]*mpSession),
		arrivals: make(chan *mpSession, 16),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listen address.
func (l *MultipathListener) Addr() string { return l.ln.Addr().String() }

// AcceptSession blocks until a new logical session arrives and returns its
// reassembly handle.
func (l *MultipathListener) AcceptSession() (*mpSession, error) {
	s, ok := <-l.arrivals
	if !ok {
		return nil, ErrSessionClosed
	}
	return s, nil
}

// Close stops the listener.
func (l *MultipathListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	close(l.arrivals)
	return err
}

func (l *MultipathListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.handleSubflow(conn)
		}()
	}
}

func (l *MultipathListener) handleSubflow(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 || fields[0] != "MPJOIN" {
		return
	}
	sessionID := fields[1]
	l.mu.Lock()
	sess, ok := l.sessions[sessionID]
	if !ok {
		sess = newMPSession()
		l.sessions[sessionID] = sess
		select {
		case l.arrivals <- sess:
		default:
			// Arrival queue full: the session still works; AcceptSession
			// callers that drained late just never see it. Tests size the
			// queue generously.
		}
	}
	sess.mu.Lock()
	sess.subflows++
	sess.mu.Unlock()
	l.mu.Unlock()
	sess.feed(br)
}
