// Package dcol implements the paper's Detour Collective (§IV-C, Fig. 3):
// cooperatives whose members serve as overlay waypoints for each other,
// made transparent to servers by mimicking MPTCP subflows.
//
// The package provides:
//
//   - the collective registry (join, expel),
//   - both client-to-waypoint tunneling mechanisms the paper prototypes,
//     with their exact costs: VPN encapsulation (36 bytes per packet, one
//     setup, reusable for any destination; /26 subnets allocated from
//     10.0.0.0/8) and NAT rewriting (zero per-packet overhead, one
//     signaling exchange per destination),
//   - the detour explorer: trial-and-error probing of waypoints over an
//     MPTCP session (internal/tcpsim), withdrawal of harmful detours,
//     misbehaviour detection and expulsion,
//   - a live loopback TCP relay (relay.go) demonstrating the waypoint data
//     path on a real socket.
package dcol

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hpop/internal/sim"
	"hpop/internal/tcpsim"
)

// Collective errors.
var (
	ErrNotMember     = errors.New("dcol: not a collective member")
	ErrAlreadyMember = errors.New("dcol: already a member")
	ErrNoWaypoints   = errors.New("dcol: no usable waypoints")
	ErrSubnetsFull   = errors.New("dcol: subnet space exhausted")
)

// VPNOverheadBytes is the per-packet encapsulation cost of the VPN tunnel:
// "IP encapsulation and UDP and OpenVPN headers" = 36 bytes.
const VPNOverheadBytes = 36

// TunnelKind selects the client-to-waypoint tunneling mechanism.
type TunnelKind int

// Tunnel mechanisms.
const (
	// TunnelVPN encapsulates packets; one-time setup, reusable for any
	// server, +36 B/packet.
	TunnelVPN TunnelKind = iota + 1
	// TunnelNAT rewrites addresses at the waypoint; zero overhead but a
	// signaling exchange per new (server address, port) pair.
	TunnelNAT
)

// String implements fmt.Stringer.
func (k TunnelKind) String() string {
	switch k {
	case TunnelVPN:
		return "vpn"
	case TunnelNAT:
		return "nat"
	default:
		return fmt.Sprintf("TunnelKind(%d)", int(k))
	}
}

// Overhead returns the tunnel's per-packet byte overhead.
func (k TunnelKind) Overhead() int {
	if k == TunnelVPN {
		return VPNOverheadBytes
	}
	return 0
}

// Member is one collective participant offering waypoint service.
type Member struct {
	ID string
	// ClientLeg is the path from the exploring client to this waypoint.
	ClientLeg tcpsim.Path
	// ServerLeg is the path from this waypoint onward to the server.
	ServerLeg tcpsim.Path
	// DropRate is additional packet loss a misbehaving waypoint injects
	// ("a malicious waypoint could ... disrupt its subflow ... by dropping
	// some or all of the packets").
	DropRate float64
}

// DetourPath composes the member's two legs into the subflow path the
// server unknowingly serves, applying the tunnel's encapsulation overhead
// and any misbehaviour loss.
func (m *Member) DetourPath(kind TunnelKind) tcpsim.Path {
	p := tcpsim.Compose(m.ClientLeg, m.ServerLeg, kind.Overhead())
	if m.DropRate > 0 {
		p.Loss = 1 - (1-p.Loss)*(1-m.DropRate)
	}
	return p
}

// Collective is the cooperative's membership registry.
type Collective struct {
	mu       sync.Mutex
	members  map[string]*Member
	expelled map[string]bool
}

// NewCollective creates an empty cooperative.
func NewCollective() *Collective {
	return &Collective{
		members:  make(map[string]*Member),
		expelled: make(map[string]bool),
	}
}

// Join adds a member. Expelled members may not rejoin.
func (c *Collective) Join(m *Member) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.expelled[m.ID] {
		return fmt.Errorf("dcol: %s was expelled", m.ID)
	}
	if _, ok := c.members[m.ID]; ok {
		return ErrAlreadyMember
	}
	c.members[m.ID] = m
	return nil
}

// Expel removes a misbehaving member permanently ("the misbehaving peer can
// be expelled from the collective").
func (c *Collective) Expel(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[id]; !ok {
		return ErrNotMember
	}
	delete(c.members, id)
	c.expelled[id] = true
	return nil
}

// Members returns current members sorted by ID.
func (c *Collective) Members() []*Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Member, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Expelled reports whether a member has been expelled.
func (c *Collective) Expelled(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.expelled[id]
}

// ---- VPN subnet allocation ----

// The paper: "consider assigning each waypoint in the collective a /26 from
// the 10.0.0.0/8 block of private addresses. This allows for each of 256K
// non-conflicting waypoints to serve 64 clients simultaneously."

// SubnetBits is the prefix length allocated per waypoint.
const SubnetBits = 26

// AddressesPerSubnet is the client capacity of one waypoint's subnet.
const AddressesPerSubnet = 1 << (32 - SubnetBits) // 64

// MaxSubnets is the number of /26s in 10.0.0.0/8.
const MaxSubnets = 1 << (SubnetBits - 8) // 262144 (= "256K")

// Subnet is one allocated /26.
type Subnet struct {
	Index int
}

// CIDR renders the subnet in dotted notation.
func (s Subnet) CIDR() string {
	base := s.Index * AddressesPerSubnet // offset within 10.0.0.0/8
	return fmt.Sprintf("10.%d.%d.%d/%d",
		(base>>16)&0xFF, (base>>8)&0xFF, base&0xFF, SubnetBits)
}

// SubnetAllocator hands out non-conflicting /26s to waypoints. (The paper's
// prototype assigned subnets manually; "in a large collective, subnet
// allocations would be managed by an appropriate management plane" — this
// is that management plane.)
type SubnetAllocator struct {
	mu    sync.Mutex
	next  int
	freed []int
	owner map[string]Subnet
}

// NewSubnetAllocator creates an empty allocator.
func NewSubnetAllocator() *SubnetAllocator {
	return &SubnetAllocator{owner: make(map[string]Subnet)}
}

// Allocate assigns a subnet to a waypoint (idempotent per waypoint).
func (a *SubnetAllocator) Allocate(waypointID string) (Subnet, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.owner[waypointID]; ok {
		return s, nil
	}
	var idx int
	if n := len(a.freed); n > 0 {
		idx = a.freed[n-1]
		a.freed = a.freed[:n-1]
	} else {
		if a.next >= MaxSubnets {
			return Subnet{}, ErrSubnetsFull
		}
		idx = a.next
		a.next++
	}
	s := Subnet{Index: idx}
	a.owner[waypointID] = s
	return s, nil
}

// Release returns a waypoint's subnet to the pool.
func (a *SubnetAllocator) Release(waypointID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.owner[waypointID]; ok {
		delete(a.owner, waypointID)
		a.freed = append(a.freed, s.Index)
	}
}

// Allocated returns the number of subnets in use.
func (a *SubnetAllocator) Allocated() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.owner)
}

// ---- Tunnel cost accounting ----

// Destination identifies a server endpoint for NAT-tunnel signaling.
type Destination struct {
	Host string
	Port int
}

// TunnelManager tracks the setup and signaling costs of one client's
// tunnels to one waypoint — the VPN-vs-NAT tradeoff of §IV-C.
type TunnelManager struct {
	Kind TunnelKind

	mu          sync.Mutex
	vpnJoined   bool
	natRules    map[Destination]bool
	SetupCount  int // VPN joins (virtual interface + DHCP)
	SignalCount int // NAT per-destination negotiations
}

// NewTunnelManager creates a manager for the given mechanism.
func NewTunnelManager(kind TunnelKind) *TunnelManager {
	return &TunnelManager{Kind: kind, natRules: make(map[Destination]bool)}
}

// Prepare ensures a tunnel is ready for the destination, counting the
// control-plane work it required: the VPN sets up once and is "reused to
// create a detour for any TCP connection to any server, without any
// additional setup"; NAT "requires signaling with the waypoint for every
// new server address and port number combination".
func (t *TunnelManager) Prepare(dst Destination) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.Kind {
	case TunnelVPN:
		if !t.vpnJoined {
			t.vpnJoined = true
			t.SetupCount++
		}
	case TunnelNAT:
		if !t.natRules[dst] {
			t.natRules[dst] = true
			t.SignalCount++
		}
	}
}

// ---- Detour exploration ----

// ProbeResult is one waypoint's measured quality.
type ProbeResult struct {
	MemberID string
	RateBps  float64
	Path     tcpsim.Path
}

// ExplorationResult summarizes a trial-and-error exploration run.
type ExplorationResult struct {
	// DirectRateBps is the baseline single-path throughput.
	DirectRateBps float64
	// FinalRateBps is the throughput with the retained detours engaged.
	FinalRateBps float64
	// Kept lists retained waypoint IDs, best first.
	Kept []string
	// Withdrawn lists probed-but-rejected waypoint IDs.
	Withdrawn []string
	// Expelled lists waypoints removed from the collective for
	// misbehaviour.
	Expelled []string
	// Probes holds every probe measurement.
	Probes []ProbeResult
}

// Explorer runs the client side of detour selection.
type Explorer struct {
	// Direct is the native path to the server.
	Direct tcpsim.Path
	// Tunnel selects the tunneling mechanism for all detours.
	Tunnel TunnelKind
	// ProbeBytes sizes the per-waypoint trial transfer (default 2 MB).
	ProbeBytes float64
	// KeepBest bounds retained detours (default 1 — the paper: one
	// waypoint captures most benefit).
	KeepBest int
	// MisbehaviourLossFrac: a waypoint whose probe shows loss events in
	// more than this fraction of its RTT rounds is treated as packet-
	// dropping ("the application can detect the resulting performance
	// impact and withdraw this waypoint") and expelled. Default 0.5 —
	// far beyond any honest path's congestion signature.
	MisbehaviourLossFrac float64
	// RNG drives loss sampling.
	RNG *sim.RNG
}

func (e *Explorer) defaults() {
	if e.ProbeBytes <= 0 {
		e.ProbeBytes = 2e6
	}
	if e.KeepBest <= 0 {
		e.KeepBest = 1
	}
	if e.MisbehaviourLossFrac <= 0 {
		e.MisbehaviourLossFrac = 0.5
	}
	if e.RNG == nil {
		e.RNG = sim.NewRNG(1)
	}
	if e.Tunnel == 0 {
		e.Tunnel = TunnelVPN
	}
}

// Explore probes every collective member as a detour for a transfer of
// `bytes`, retains the best KeepBest, withdraws the rest, expels
// misbehavers, and measures the final multipath throughput
// (direct + retained detours).
func (e *Explorer) Explore(c *Collective, bytes float64) (*ExplorationResult, error) {
	e.defaults()
	members := c.Members()
	if len(members) == 0 {
		return nil, ErrNoWaypoints
	}

	res := &ExplorationResult{}
	// Baseline: direct only.
	direct := tcpsim.Transfer(e.Direct, e.ProbeBytes, e.RNG)
	res.DirectRateBps = direct.MeanRateBps()

	// Probe each waypoint individually ("sending a few data packets over
	// new subflows and staying with those waypoints that perform well").
	for _, m := range members {
		path := m.DetourPath(e.Tunnel)
		probe := tcpsim.Transfer(path, e.ProbeBytes, e.RNG)
		pr := ProbeResult{MemberID: m.ID, RateBps: probe.MeanRateBps(), Path: path}
		res.Probes = append(res.Probes, pr)
		lossFrac := 0.0
		if probe.Rounds > 0 {
			lossFrac = float64(probe.Losses) / float64(probe.Rounds)
		}
		if lossFrac > e.MisbehaviourLossFrac {
			// The subflow is being disrupted: withdraw and expel.
			if err := c.Expel(m.ID); err == nil {
				res.Expelled = append(res.Expelled, m.ID)
			}
		}
	}

	// Rank surviving probes and keep the best detours that beat some
	// fraction of the direct path (harmful detours are withdrawn).
	surviving := make([]ProbeResult, 0, len(res.Probes))
	expelledSet := make(map[string]bool, len(res.Expelled))
	for _, id := range res.Expelled {
		expelledSet[id] = true
	}
	for _, pr := range res.Probes {
		if !expelledSet[pr.MemberID] {
			surviving = append(surviving, pr)
		}
	}
	sort.SliceStable(surviving, func(i, j int) bool {
		return surviving[i].RateBps > surviving[j].RateBps
	})
	session := tcpsim.NewSession(tcpsim.MinRTT, e.RNG)
	session.AddSubflow(e.Direct, "direct")
	kept := 0
	for _, pr := range surviving {
		if kept >= e.KeepBest {
			res.Withdrawn = append(res.Withdrawn, pr.MemberID)
			continue
		}
		if pr.RateBps <= res.DirectRateBps*0.5 {
			// Not worth a subflow; withdraw this detour.
			res.Withdrawn = append(res.Withdrawn, pr.MemberID)
			continue
		}
		session.AddSubflow(pr.Path, pr.MemberID)
		res.Kept = append(res.Kept, pr.MemberID)
		kept++
	}

	final, err := session.Transfer(bytes, 0)
	if err != nil {
		return nil, err
	}
	res.FinalRateBps = final.MeanRateBps()
	return res, nil
}
