package dcol

import (
	"errors"
	"sync"

	"hpop/internal/sim"
	"hpop/internal/tcpsim"
)

// This file implements §IV-C "Security": "Our prototype requires the client
// to complete the TLS handshake with the server over the direct path before
// establishing any detours. Therefore, any subflows through detours will be
// encrypted. While this keeps the contents obscured from the waypoints, the
// waypoints still learn the IP addresses with which the client is
// communicating ... This is an inherent cost of DCol."

// ErrHandshakeFirst is returned when a detour is added before the direct-
// path TLS handshake completes.
var ErrHandshakeFirst = errors.New("dcol: TLS handshake over the direct path must complete before detours")

// Exposure records what one waypoint learns about a secured session — the
// inherent metadata cost the paper acknowledges.
type Exposure struct {
	WaypointID string
	// ServerAddr is visible (IP headers are in the clear).
	ServerAddr Destination
	// PlaintextVisible is always false once the TLS-first rule holds.
	PlaintextVisible bool
}

// SecureSession enforces the TLS-first ordering around an MPTCP session.
type SecureSession struct {
	// Server is the destination endpoint.
	Server Destination
	// Direct is the native path used for the handshake and first subflow.
	Direct tcpsim.Path
	// Tunnel is the detour tunneling mechanism.
	Tunnel TunnelKind

	mu            sync.Mutex
	session       *tcpsim.Session
	handshakeDone bool
	handshakeTime sim.Time
	exposures     []Exposure
}

// NewSecureSession prepares a session toward server over the direct path.
func NewSecureSession(server Destination, direct tcpsim.Path, tunnel TunnelKind, rng *sim.RNG) *SecureSession {
	if tunnel == 0 {
		tunnel = TunnelVPN
	}
	return &SecureSession{
		Server:  server,
		Direct:  direct,
		Tunnel:  tunnel,
		session: tcpsim.NewSession(tcpsim.MinRTT, rng),
	}
}

// Handshake completes TCP establishment plus the TLS exchange over the
// direct path (2 direct-path RTTs: one for SYN/SYN-ACK, one for TLS 1.3)
// and opens the direct subflow. It returns the handshake latency.
func (s *SecureSession) Handshake() sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.handshakeDone {
		return s.handshakeTime
	}
	s.handshakeTime = 2 * s.Direct.RTT
	s.handshakeDone = true
	s.session.AddSubflow(s.Direct, "direct")
	return s.handshakeTime
}

// HandshakeDone reports whether the TLS-first precondition holds.
func (s *SecureSession) HandshakeDone() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handshakeDone
}

// AddDetour joins a waypoint subflow. It fails before Handshake, enforcing
// that detour subflows only ever carry TLS ciphertext. The waypoint's
// exposure (server address visible, plaintext not) is recorded.
func (s *SecureSession) AddDetour(m *Member) (*tcpsim.Subflow, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.handshakeDone {
		return nil, ErrHandshakeFirst
	}
	sf := s.session.AddSubflow(m.DetourPath(s.Tunnel), m.ID)
	s.exposures = append(s.exposures, Exposure{
		WaypointID:       m.ID,
		ServerAddr:       s.Server,
		PlaintextVisible: false,
	})
	return sf, nil
}

// Transfer runs a bulk transfer over the established session (handshake
// latency is added to the reported duration).
func (s *SecureSession) Transfer(bytes float64) (tcpsim.SessionStats, error) {
	s.mu.Lock()
	if !s.handshakeDone {
		s.mu.Unlock()
		return tcpsim.SessionStats{}, ErrHandshakeFirst
	}
	sess := s.session
	hs := s.handshakeTime
	s.mu.Unlock()
	st, err := sess.Transfer(bytes, 0)
	if err != nil {
		return st, err
	}
	st.Duration += hs
	return st, nil
}

// Exposures returns what each engaged waypoint learned.
func (s *SecureSession) Exposures() []Exposure {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Exposure, len(s.exposures))
	copy(out, s.exposures)
	return out
}
