// Package nat models network address translation and the traversal
// machinery §III of the paper relies on for HPoP reachability: UPnP port
// mappings on home NATs, STUN-style mapping discovery and hole punching
// (including its failure modes across NAT behaviours), and TURN-style
// relaying as the fallback "with limited functionality".
//
// Two layers live here: a packet-level Box that implements classic NAT
// mapping/filtering behaviours (full cone, restricted cone, port-restricted
// cone, symmetric), and a planner that, given the NAT chains in front of an
// HPoP and a client, selects the cheapest working traversal method.
package nat

import (
	"errors"
	"fmt"
	"sync"
)

// Type classifies a NAT's combined mapping+filtering behaviour using the
// classic STUN taxonomy (RFC 3489).
type Type int

// NAT behaviours, from least to most restrictive.
const (
	// None means no NAT: a public address.
	None Type = iota + 1
	// FullCone: endpoint-independent mapping and filtering.
	FullCone
	// RestrictedCone: endpoint-independent mapping, address-dependent
	// filtering.
	RestrictedCone
	// PortRestrictedCone: endpoint-independent mapping, address-and-port-
	// dependent filtering.
	PortRestrictedCone
	// Symmetric: address-and-port-dependent mapping (a fresh external port
	// per destination) and filtering.
	Symmetric
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case None:
		return "public"
	case FullCone:
		return "full-cone"
	case RestrictedCone:
		return "restricted-cone"
	case PortRestrictedCone:
		return "port-restricted-cone"
	case Symmetric:
		return "symmetric"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Effective returns the effective behaviour of a chain of NATs (innermost
// first): the most restrictive behaviour dominates. An empty chain is None.
func Effective(chain []Type) Type {
	eff := None
	for _, t := range chain {
		if t > eff {
			eff = t
		}
	}
	return eff
}

// CanHolePunch reports whether STUN-style UDP hole punching succeeds between
// endpoints with effective NAT behaviours a and b, per the standard result
// matrix: symmetric fails against symmetric and port-restricted (the fresh
// per-destination mapping defeats port-specific filters) and succeeds
// otherwise; all cone-cone combinations succeed.
func CanHolePunch(a, b Type) bool {
	if a == None || b == None {
		return true
	}
	if a == Symmetric && b >= PortRestrictedCone {
		return false
	}
	if b == Symmetric && a >= PortRestrictedCone {
		return false
	}
	return true
}

// Endpoint describes a host's NAT situation.
type Endpoint struct {
	// Chain lists the NATs between the host and the public Internet,
	// innermost (home) first. A second entry models carrier-grade NAT.
	Chain []Type
	// UPnP reports whether the innermost (home) NAT honours UPnP port
	// mapping requests. UPnP cannot configure an ISP's CGN.
	UPnP bool
}

// Public reports whether the endpoint has an unNATed public address.
func (e Endpoint) Public() bool { return Effective(e.Chain) == None }

// BehindCGN reports whether more than one translation layer applies.
func (e Endpoint) BehindCGN() bool { return len(e.Chain) > 1 }

// Method is a traversal mechanism, in preference order.
type Method int

// Traversal methods.
const (
	// Direct means no traversal needed (public address).
	Direct Method = iota + 1
	// UPnP means a port mapping on the home NAT makes the HPoP reachable.
	UPnP
	// STUN means UDP hole punching through the NAT(s).
	STUN
	// TURN means all traffic relays through a third party.
	TURN
	// Unreachable means no modeled mechanism works (never produced by the
	// planner, which always falls back to TURN, but callers can represent
	// policy-disabled relays with it).
	Unreachable
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Direct:
		return "direct"
	case UPnP:
		return "upnp"
	case STUN:
		return "stun"
	case TURN:
		return "turn"
	case Unreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Plan is the planner's verdict for one HPoP/client pair.
type Plan struct {
	Method Method
	// Relayed reports whether traffic crosses a third-party relay (TURN),
	// which costs extra latency and caps bandwidth — the paper's "limited
	// functionality" mode.
	Relayed bool
}

// PlanTraversal selects the cheapest mechanism that makes hpop reachable
// from client, following §III: UPnP for single home NATs that support it,
// STUN hole punching where behaviours permit, TURN otherwise.
func PlanTraversal(hpop, client Endpoint) Plan {
	if hpop.Public() {
		return Plan{Method: Direct}
	}
	// UPnP: programmatic port forwarding works only when the sole
	// translation layer is a cooperating home NAT.
	if hpop.UPnP && !hpop.BehindCGN() {
		return Plan{Method: UPnP}
	}
	if CanHolePunch(Effective(hpop.Chain), Effective(client.Chain)) {
		return Plan{Method: STUN}
	}
	return Plan{Method: TURN, Relayed: true}
}

// ---- Packet-level NAT box ----

// Addr is a transport address in the model.
type Addr struct {
	Host string
	Port int
}

// String implements fmt.Stringer.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// ErrDropped indicates the NAT's filter rejected an inbound packet.
var ErrDropped = errors.New("nat: inbound packet filtered")

// ErrNoMapping indicates no mapping exists for the external destination.
var ErrNoMapping = errors.New("nat: no mapping for destination")

type mapping struct {
	internal Addr
	external Addr
	// peers records destinations this mapping has sent to (filtering state).
	peers map[Addr]bool
	// hosts records destination hosts (for address-restricted filtering).
	hosts map[string]bool
}

// Box is a single NAT device translating between an internal and external
// realm. It allocates external ports sequentially, which keeps tests
// deterministic.
type Box struct {
	Type Type
	// ExternalHost is the box's public IP.
	ExternalHost string

	mu       sync.Mutex
	nextPort int
	// byInternal maps internal endpoint (+destination for symmetric NATs)
	// to mapping.
	byKey map[string]*mapping
	// byExternal maps external port to mapping.
	byExternal map[int]*mapping
	// forwards are static UPnP port mappings: external port -> internal.
	forwards map[int]Addr
	upnp     bool
}

// NewBox creates a NAT box of the given behaviour.
func NewBox(t Type, externalHost string, upnp bool) *Box {
	return &Box{
		Type:         t,
		ExternalHost: externalHost,
		nextPort:     20000,
		byKey:        make(map[string]*mapping),
		byExternal:   make(map[int]*mapping),
		forwards:     make(map[int]Addr),
		upnp:         upnp,
	}
}

func (b *Box) key(internal, dst Addr) string {
	if b.Type == Symmetric {
		return internal.String() + "|" + dst.String()
	}
	return internal.String()
}

// SendOut translates an outbound packet from internal src to external dst,
// returning the external source address the destination will observe. It
// creates or reuses a mapping per the box's mapping behaviour and records
// the destination for filtering.
func (b *Box) SendOut(src, dst Addr) Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := b.key(src, dst)
	m, ok := b.byKey[k]
	if !ok {
		b.nextPort++
		m = &mapping{
			internal: src,
			external: Addr{Host: b.ExternalHost, Port: b.nextPort},
			peers:    make(map[Addr]bool),
			hosts:    make(map[string]bool),
		}
		b.byKey[k] = m
		b.byExternal[m.external.Port] = m
	}
	m.peers[dst] = true
	m.hosts[dst.Host] = true
	return m.external
}

// ReceiveIn filters an inbound packet from external src addressed to the
// box's external port, returning the internal destination if admitted.
// Static UPnP forwards bypass dynamic filtering.
func (b *Box) ReceiveIn(src Addr, externalPort int) (Addr, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if internal, ok := b.forwards[externalPort]; ok {
		return internal, nil
	}
	m, ok := b.byExternal[externalPort]
	if !ok {
		return Addr{}, ErrNoMapping
	}
	switch b.Type {
	case FullCone:
		return m.internal, nil
	case RestrictedCone:
		if m.hosts[src.Host] {
			return m.internal, nil
		}
	case PortRestrictedCone, Symmetric:
		if m.peers[src] {
			return m.internal, nil
		}
	case None:
		return m.internal, nil
	}
	return Addr{}, ErrDropped
}

// AddPortMapping installs a UPnP static forward. It fails if the box does
// not support UPnP or the port is taken.
func (b *Box) AddPortMapping(externalPort int, internal Addr) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.upnp {
		return errors.New("nat: UPnP not supported by this device")
	}
	if _, taken := b.forwards[externalPort]; taken {
		return errors.New("nat: external port already mapped")
	}
	b.forwards[externalPort] = internal
	return nil
}

// RemovePortMapping deletes a UPnP forward.
func (b *Box) RemovePortMapping(externalPort int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.forwards, externalPort)
}

// ---- STUN / hole punching over Boxes ----

// STUNDiscover reports the external address a host (internal addr) behind
// the box would observe via a STUN binding request to stunServer.
func STUNDiscover(b *Box, internal, stunServer Addr) Addr {
	return b.SendOut(internal, stunServer)
}

// HolePunch attempts a UDP hole punch between host A behind boxA and host B
// behind boxB, using a rendezvous exchange of STUN-discovered addresses. It
// performs the canonical simultaneous-open: both sides learn the other's
// reflexive address, send outbound (opening their filters), then each tries
// to deliver through the other's NAT. It returns whether bidirectional
// connectivity was established.
func HolePunch(boxA, boxB *Box, hostA, hostB, stunServer Addr) bool {
	// Phase 1: both discover reflexive addresses via STUN.
	reflexA := STUNDiscover(boxA, hostA, stunServer)
	reflexB := STUNDiscover(boxB, hostB, stunServer)

	// Phase 2: both send to the other's reflexive address. For symmetric
	// NATs this allocates a NEW mapping whose port differs from the
	// STUN-observed one — the crux of why symmetric punching fails against
	// port-sensitive filters.
	srcAtoB := boxA.SendOut(hostA, reflexB)
	srcBtoA := boxB.SendOut(hostB, reflexA)

	// Phase 3: each packet must pass the other NAT's inbound filter. A's
	// packet arrives at B's NAT from srcAtoB targeting reflexB's port.
	_, errB := boxB.ReceiveIn(srcAtoB, reflexB.Port)
	_, errA := boxA.ReceiveIn(srcBtoA, reflexA.Port)
	if errA == nil && errB == nil {
		return true
	}
	// Retry round: a side that RECEIVED a packet learned the peer's true
	// external address and can answer it directly. (A side whose inbound
	// was dropped learned nothing — it cannot aim any better than the STUN
	// reflexive address it already tried.)
	if errB == nil && errA != nil {
		// B got A's packet from srcAtoB; B replies straight at it.
		srcBtoA2 := boxB.SendOut(hostB, srcAtoB)
		_, err := boxA.ReceiveIn(srcBtoA2, srcAtoB.Port)
		return err == nil
	}
	if errA == nil && errB != nil {
		srcAtoB2 := boxA.SendOut(hostA, srcBtoA)
		_, err := boxB.ReceiveIn(srcAtoB2, srcBtoA.Port)
		return err == nil
	}
	return false
}

// ---- TURN relay ----

// Relay models a TURN server: both parties connect outbound to it, and it
// forwards between them. Relaying always works (outbound connections are
// never filtered) but adds a relay hop; RelayPenalty quantifies it for
// experiments.
type Relay struct {
	Addr Addr
	// ExtraRTT is the added round-trip latency of the dogleg path.
	ExtraRTTSeconds float64
	// BandwidthCapBps caps throughput at the relay's provisioned capacity.
	BandwidthCapBps float64
}

// Connect verifies both endpoints can reach the relay (always true in the
// model: outbound traffic passes every NAT type) and returns the penalty
// descriptor the session must apply.
func (r *Relay) Connect(a, b Endpoint) (extraRTT float64, bwCap float64) {
	return r.ExtraRTTSeconds, r.BandwidthCapBps
}
