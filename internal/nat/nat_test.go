package nat

import (
	"testing"
	"testing/quick"
)

func TestEffective(t *testing.T) {
	cases := []struct {
		chain []Type
		want  Type
	}{
		{nil, None},
		{[]Type{FullCone}, FullCone},
		{[]Type{FullCone, Symmetric}, Symmetric}, // CGN dominates
		{[]Type{Symmetric, FullCone}, Symmetric},
		{[]Type{RestrictedCone, PortRestrictedCone}, PortRestrictedCone},
	}
	for _, c := range cases {
		if got := Effective(c.chain); got != c.want {
			t.Errorf("Effective(%v) = %v, want %v", c.chain, got, c.want)
		}
	}
}

func TestCanHolePunchMatrix(t *testing.T) {
	// The standard pairwise result matrix.
	cases := []struct {
		a, b Type
		want bool
	}{
		{None, Symmetric, true},
		{FullCone, FullCone, true},
		{FullCone, Symmetric, true},
		{RestrictedCone, Symmetric, true},
		{PortRestrictedCone, PortRestrictedCone, true},
		{PortRestrictedCone, Symmetric, false},
		{Symmetric, Symmetric, false},
	}
	for _, c := range cases {
		if got := CanHolePunch(c.a, c.b); got != c.want {
			t.Errorf("CanHolePunch(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Matrix is symmetric.
		if got := CanHolePunch(c.b, c.a); got != c.want {
			t.Errorf("CanHolePunch(%v,%v) (flipped) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestPlanTraversal(t *testing.T) {
	pubClient := Endpoint{}
	cases := []struct {
		name string
		hpop Endpoint
		want Method
	}{
		{"public hpop", Endpoint{}, Direct},
		{"home NAT with UPnP", Endpoint{Chain: []Type{PortRestrictedCone}, UPnP: true}, UPnP},
		{"home NAT no UPnP, punchable", Endpoint{Chain: []Type{PortRestrictedCone}}, STUN},
		{"CGN, UPnP useless", Endpoint{Chain: []Type{FullCone, Symmetric}, UPnP: true}, STUN},
		{"symmetric vs public client", Endpoint{Chain: []Type{Symmetric}}, STUN},
	}
	for _, c := range cases {
		if got := PlanTraversal(c.hpop, pubClient); got.Method != c.want {
			t.Errorf("%s: method = %v, want %v", c.name, got.Method, c.want)
		}
	}
	// Symmetric HPoP vs port-restricted client: punch fails -> TURN.
	plan := PlanTraversal(
		Endpoint{Chain: []Type{Symmetric}},
		Endpoint{Chain: []Type{PortRestrictedCone}},
	)
	if plan.Method != TURN || !plan.Relayed {
		t.Errorf("symmetric vs port-restricted = %+v, want relayed TURN", plan)
	}
}

func TestEndpointHelpers(t *testing.T) {
	if !(Endpoint{}).Public() {
		t.Error("empty chain should be public")
	}
	e := Endpoint{Chain: []Type{FullCone, Symmetric}}
	if !e.BehindCGN() || e.Public() {
		t.Error("CGN endpoint misclassified")
	}
}

func TestStrings(t *testing.T) {
	if Symmetric.String() != "symmetric" || None.String() != "public" {
		t.Error("Type.String wrong")
	}
	if TURN.String() != "turn" || Direct.String() != "direct" {
		t.Error("Method.String wrong")
	}
	if Type(99).String() == "" || Method(99).String() == "" {
		t.Error("unknown enums must stringify")
	}
}

func TestBoxMappingReuseConeVsSymmetric(t *testing.T) {
	host := Addr{Host: "10.0.0.2", Port: 5000}
	dst1 := Addr{Host: "198.51.100.1", Port: 80}
	dst2 := Addr{Host: "198.51.100.2", Port: 80}

	cone := NewBox(FullCone, "203.0.113.1", false)
	m1 := cone.SendOut(host, dst1)
	m2 := cone.SendOut(host, dst2)
	if m1 != m2 {
		t.Errorf("cone NAT allocated distinct mappings: %v vs %v", m1, m2)
	}

	sym := NewBox(Symmetric, "203.0.113.2", false)
	s1 := sym.SendOut(host, dst1)
	s2 := sym.SendOut(host, dst2)
	if s1 == s2 {
		t.Error("symmetric NAT reused mapping across destinations")
	}
}

func TestBoxFiltering(t *testing.T) {
	host := Addr{Host: "10.0.0.2", Port: 5000}
	peer := Addr{Host: "198.51.100.1", Port: 4321}
	otherPort := Addr{Host: "198.51.100.1", Port: 9999}
	otherHost := Addr{Host: "198.51.100.9", Port: 4321}

	check := func(typ Type, src Addr, wantOK bool) {
		t.Helper()
		b := NewBox(typ, "203.0.113.1", false)
		ext := b.SendOut(host, peer)
		_, err := b.ReceiveIn(src, ext.Port)
		if (err == nil) != wantOK {
			t.Errorf("%v: inbound from %v ok=%v, want %v", typ, src, err == nil, wantOK)
		}
	}
	// Full cone admits anyone.
	check(FullCone, otherHost, true)
	// Restricted cone admits same host, any port.
	check(RestrictedCone, otherPort, true)
	check(RestrictedCone, otherHost, false)
	// Port-restricted admits only the exact peer.
	check(PortRestrictedCone, peer, true)
	check(PortRestrictedCone, otherPort, false)
	// Unknown external port.
	b := NewBox(FullCone, "x", false)
	if _, err := b.ReceiveIn(peer, 12345); err != ErrNoMapping {
		t.Errorf("unmapped port err = %v, want ErrNoMapping", err)
	}
}

func TestBoxUPnPForward(t *testing.T) {
	internal := Addr{Host: "10.0.0.2", Port: 8080}
	anyone := Addr{Host: "198.51.100.77", Port: 31337}

	b := NewBox(PortRestrictedCone, "203.0.113.1", true)
	if err := b.AddPortMapping(8080, internal); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReceiveIn(anyone, 8080)
	if err != nil || got != internal {
		t.Errorf("UPnP forward: got %v, %v", got, err)
	}
	if err := b.AddPortMapping(8080, internal); err == nil {
		t.Error("duplicate port mapping accepted")
	}
	b.RemovePortMapping(8080)
	if _, err := b.ReceiveIn(anyone, 8080); err == nil {
		t.Error("forward survived removal")
	}

	noUPnP := NewBox(FullCone, "203.0.113.2", false)
	if err := noUPnP.AddPortMapping(80, internal); err == nil {
		t.Error("UPnP mapping accepted on non-UPnP box")
	}
}

func TestHolePunchOutcomesMatchMatrix(t *testing.T) {
	stun := Addr{Host: "192.0.2.1", Port: 3478}
	hostA := Addr{Host: "10.0.0.2", Port: 5000}
	hostB := Addr{Host: "10.1.0.2", Port: 5000}
	types := []Type{FullCone, RestrictedCone, PortRestrictedCone, Symmetric}
	for _, ta := range types {
		for _, tb := range types {
			boxA := NewBox(ta, "203.0.113.1", false)
			boxB := NewBox(tb, "203.0.113.2", false)
			got := HolePunch(boxA, boxB, hostA, hostB, stun)
			want := CanHolePunch(ta, tb)
			if got != want {
				t.Errorf("HolePunch(%v,%v) = %v; matrix says %v", ta, tb, got, want)
			}
		}
	}
}

func TestSTUNDiscoverReturnsReflexive(t *testing.T) {
	b := NewBox(PortRestrictedCone, "203.0.113.1", false)
	host := Addr{Host: "10.0.0.2", Port: 5000}
	stun := Addr{Host: "192.0.2.1", Port: 3478}
	reflex := STUNDiscover(b, host, stun)
	if reflex.Host != "203.0.113.1" || reflex.Port == 0 {
		t.Errorf("reflexive addr = %v", reflex)
	}
}

func TestRelayConnect(t *testing.T) {
	r := &Relay{
		Addr:            Addr{Host: "relay", Port: 3478},
		ExtraRTTSeconds: 0.04,
		BandwidthCapBps: 50e6,
	}
	rtt, bw := r.Connect(Endpoint{Chain: []Type{Symmetric}}, Endpoint{Chain: []Type{Symmetric}})
	if rtt != 0.04 || bw != 50e6 {
		t.Errorf("relay penalty = %v, %v", rtt, bw)
	}
}

// Property: the planner never returns Unreachable and only flags Relayed for
// TURN.
func TestPlanTraversalTotalProperty(t *testing.T) {
	f := func(chainRaw []uint8, clientRaw []uint8, upnp bool) bool {
		toChain := func(raw []uint8) []Type {
			var out []Type
			for _, r := range raw {
				if len(out) == 2 {
					break
				}
				out = append(out, Type(int(r%4)+2)) // FullCone..Symmetric
			}
			return out
		}
		p := PlanTraversal(
			Endpoint{Chain: toChain(chainRaw), UPnP: upnp},
			Endpoint{Chain: toChain(clientRaw)},
		)
		if p.Method == Unreachable || p.Method == 0 {
			return false
		}
		return p.Relayed == (p.Method == TURN)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
