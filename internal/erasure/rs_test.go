package erasure

import (
	"bytes"
	"testing"
	"testing/quick"

	"hpop/internal/sim"
)

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverse: a * inv(a) == 1 for all non-zero a.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a*inv(a) != 1 for a=%d", a)
		}
	}
	// Distributivity spot checks over all pairs with a fixed c.
	const c = 0x53
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b += 7 {
			left := gfMul(byte(a), byte(b)^byte(c))
			right := gfMul(byte(a), byte(b)) ^ gfMul(byte(a), byte(c))
			if left != right {
				t.Fatalf("distributivity fails at a=%d b=%d", a, b)
			}
		}
	}
	if gfMul(0, 5) != 0 || gfMul(7, 0) != 0 {
		t.Error("multiplication by zero not zero")
	}
	if gfDiv(0, 9) != 0 {
		t.Error("0/x != 0")
	}
	if gfDiv(gfMul(12, 7), 7) != 12 {
		t.Error("div does not invert mul")
	}
	if gfPow(3, 0) != 1 || gfPow(0, 5) != 0 {
		t.Error("gfPow edge cases wrong")
	}
}

func TestGFPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("div by zero", func() { gfDiv(3, 0) })
	mustPanic("inv of zero", func() { gfInv(0) })
}

func TestNewParamValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {200, 56}} {
		if _, err := New(bad[0], bad[1]); err != ErrInvalidParams {
			t.Errorf("New(%d,%d) err = %v, want ErrInvalidParams", bad[0], bad[1], err)
		}
	}
	if _, err := New(200, 55); err != nil {
		t.Errorf("New(200,55) should be valid: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the data attic keeps the user's records at home, not in the cloud")
	shards, n, err := c.EncodeBlob(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 6 {
		t.Fatalf("shards = %d, want 6", len(shards))
	}
	got, err := c.DecodeBlob(shards, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip without losses corrupted data")
	}
}

func TestReconstructFromAnyKShards(t *testing.T) {
	c, _ := New(4, 3)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	shards, n, err := c.EncodeBlob(data)
	if err != nil {
		t.Fatal(err)
	}
	// Drop every possible set of 3 shards (m=3) and reconstruct.
	total := len(shards)
	for a := 0; a < total; a++ {
		for b := a + 1; b < total; b++ {
			for d := b + 1; d < total; d++ {
				work := make([][]byte, total)
				copy(work, shards)
				work[a], work[b], work[d] = nil, nil, nil
				got, err := c.DecodeBlob(work, n)
				if err != nil {
					t.Fatalf("decode with losses {%d,%d,%d}: %v", a, b, d, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("corrupted reconstruction with losses {%d,%d,%d}", a, b, d)
				}
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := New(3, 2)
	data := []byte("hello attic")
	shards, _, _ := c.EncodeBlob(data)
	shards[0], shards[1], shards[2] = nil, nil, nil // only 2 left, k=3
	if err := c.Reconstruct(shards); err != ErrTooFewShards {
		t.Errorf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructRepairsParityToo(t *testing.T) {
	c, _ := New(3, 2)
	shards, n, _ := c.EncodeBlob([]byte("parity repair check, long enough to split"))
	shards[1] = nil // data shard
	shards[4] = nil // parity shard
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Errorf("Verify after repair = %v, %v; want true", ok, err)
	}
	got, err := c.Join(shards[:3], n)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "parity repair check, long enough to split" {
		t.Error("data wrong after parity repair")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c, _ := New(4, 2)
	shards, _, _ := c.EncodeBlob(bytes.Repeat([]byte("abc"), 100))
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("clean verify = %v, %v", ok, err)
	}
	shards[2][5] ^= 0xFF
	ok, err = c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Verify missed a corrupted data shard")
	}
}

func TestSplitJoinEdgeCases(t *testing.T) {
	c, _ := New(4, 2)
	if _, err := c.Split(nil); err != ErrEmptyData {
		t.Errorf("Split(nil) err = %v", err)
	}
	// Length not divisible by k: padding must round-trip.
	data := []byte("xyz") // 3 bytes, k=4 -> shardLen 1
	shards, err := c.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Join(shards, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("Join = %q, want %q", got, data)
	}
	if _, err := c.Join(shards[:2], 3); err != ErrShardCount {
		t.Errorf("short Join err = %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	c, _ := New(3, 2)
	if _, err := c.Encode([][]byte{{1}, {2}}); err != ErrShardCount {
		t.Errorf("wrong count err = %v", err)
	}
	if _, err := c.Encode([][]byte{{1}, {2, 3}, {4}}); err != ErrShardSizeMixed {
		t.Errorf("mixed size err = %v", err)
	}
}

func TestStorageOverhead(t *testing.T) {
	c, _ := New(4, 2)
	if c.StorageOverhead() != 1.5 {
		t.Errorf("overhead = %v, want 1.5", c.StorageOverhead())
	}
	if c.K() != 4 || c.M() != 2 {
		t.Error("K/M accessors wrong")
	}
}

// Property: for random data, random (k, m), and random loss patterns of at
// most m shards, reconstruction always recovers the original bytes.
func TestReconstructProperty(t *testing.T) {
	f := func(seed uint64, raw []byte) bool {
		if len(raw) == 0 {
			raw = []byte{1}
		}
		rng := sim.NewRNG(seed)
		k := 2 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		shards, n, err := c.EncodeBlob(raw)
		if err != nil {
			return false
		}
		// Drop up to m random shards.
		losses := rng.Intn(m + 1)
		perm := rng.Perm(k + m)
		for i := 0; i < losses; i++ {
			shards[perm[i]] = nil
		}
		got, err := c.DecodeBlob(shards, n)
		if err != nil {
			return false
		}
		return bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode4x2_64KB(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i)
	}
	shards, _ := c.Split(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
}

func BenchmarkReconstruct4x2_64KB(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 64<<10)
	shards, _, _ := c.EncodeBlob(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(shards))
		copy(work, shards)
		work[0], work[5] = nil, nil
		if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
}
