package erasure

import (
	"bytes"
	"testing"

	"hpop/internal/sim"
)

// mulAddSliceRef is the straightforward definition the unrolled
// implementation must match byte-for-byte.
func mulAddSliceRef(dst, src []byte, c byte) {
	for i, s := range src {
		dst[i] ^= gfMul(c, s)
	}
}

func TestMulAddSliceMatchesReference(t *testing.T) {
	rng := sim.NewRNG(7)
	// Lengths straddling the 8-way unroll boundary plus larger buffers.
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1024, 4096 + 3} {
		src := make([]byte, n)
		base := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Intn(256))
			base[i] = byte(rng.Intn(256))
		}
		for _, c := range []byte{0, 1, 2, 0x53, 0xCA, 0xFF} {
			got := append([]byte(nil), base...)
			want := append([]byte(nil), base...)
			mulAddSlice(got, src, c)
			mulAddSliceRef(want, src, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulAddSlice(n=%d, c=%#x) diverges from reference", n, c)
			}
		}
	}
}

func TestMulTableMatchesGfMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		for x := 0; x < 256; x++ {
			if gfMulTable[c][x] != gfMul(byte(c), byte(x)) {
				t.Fatalf("gfMulTable[%d][%d] = %d, want %d", c, x, gfMulTable[c][x], gfMul(byte(c), byte(x)))
			}
		}
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	rng := sim.NewRNG(7)
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(rng.Intn(256))
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulAddSlice(dst, src, 0xCA)
	}
}
