package erasure

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by the coder.
var (
	ErrTooFewShards    = errors.New("erasure: not enough shards to reconstruct")
	ErrShardSizeMixed  = errors.New("erasure: shards have differing sizes")
	ErrShardCount      = errors.New("erasure: wrong number of shards")
	ErrInvalidParams   = errors.New("erasure: k and m must be positive and k+m <= 255")
	ErrEmptyData       = errors.New("erasure: empty data")
	ErrShortShardSlice = errors.New("erasure: shard slice shorter than k+m")
)

// Coder is a systematic Reed-Solomon (k, m) coder: k data shards, m parity
// shards, tolerating the loss of any m shards. Coders are immutable and safe
// for concurrent use after construction.
type Coder struct {
	k, m int
	// parityRows is the m x k encoding matrix: parity[i] = sum_j rows[i][j]*data[j].
	parityRows [][]byte
}

// New constructs a (k, m) coder. k+m must be at most 255.
func New(k, m int) (*Coder, error) {
	if k <= 0 || m <= 0 || k+m > 255 {
		return nil, ErrInvalidParams
	}
	// Build a systematic generator from a (k+m) x k Vandermonde matrix: rows
	// r_i = [1, a_i, a_i^2, ...] with distinct a_i. Gaussian-eliminate the
	// top k x k block to the identity; the bottom m rows become the parity
	// matrix. Any k rows of the result are then linearly independent.
	rows := make([][]byte, k+m)
	for i := range rows {
		rows[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			rows[i][j] = gfPow(byte(i+1), j)
		}
	}
	// Multiply every row by the inverse of the top k x k block; the top
	// block becomes the identity (systematic code) and the bottom m rows
	// become the parity matrix. Any k rows remain linearly independent.
	top := make([][]byte, k)
	for i := 0; i < k; i++ {
		top[i] = make([]byte, k)
		copy(top[i], rows[i])
	}
	inv, err := invertMatrix(top)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, m)
	for i := 0; i < m; i++ {
		parity[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			var acc byte
			for t := 0; t < k; t++ {
				acc ^= gfMul(rows[k+i][t], inv[t][j])
			}
			parity[i][j] = acc
		}
	}
	return &Coder{k: k, m: m, parityRows: parity}, nil
}

// K returns the number of data shards.
func (c *Coder) K() int { return c.k }

// M returns the number of parity shards.
func (c *Coder) M() int { return c.m }

// invertMatrix inverts a square GF(256) matrix via Gauss-Jordan.
func invertMatrix(a [][]byte) ([][]byte, error) {
	n := len(a)
	work := make([][]byte, n)
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		work[i] = make([]byte, n)
		copy(work[i], a[i])
		out[i] = make([]byte, n)
		out[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("erasure: singular matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		out[col], out[pivot] = out[pivot], out[col]
		// Normalize pivot row.
		p := work[col][col]
		if p != 1 {
			ip := gfInv(p)
			for j := 0; j < n; j++ {
				work[col][j] = gfMul(work[col][j], ip)
				out[col][j] = gfMul(out[col][j], ip)
			}
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			for j := 0; j < n; j++ {
				work[r][j] ^= gfMul(f, work[col][j])
				out[r][j] ^= gfMul(f, out[col][j])
			}
		}
	}
	return out, nil
}

// Split pads data to a multiple of k and slices it into k equal data shards.
// The original length must be carried out of band (Join takes it back).
func (c *Coder) Split(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	shardLen := (len(data) + c.k - 1) / c.k
	shards := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			copy(shards[i], data[start:min(start+shardLen, len(data))])
		}
	}
	return shards, nil
}

// Join reassembles the original data of length n from k data shards.
func (c *Coder) Join(shards [][]byte, n int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, ErrShardCount
	}
	out := make([]byte, 0, n)
	for i := 0; i < c.k && len(out) < n; i++ {
		if shards[i] == nil {
			return nil, ErrTooFewShards
		}
		take := min(len(shards[i]), n-len(out))
		out = append(out, shards[i][:take]...)
	}
	if len(out) != n {
		return nil, fmt.Errorf("erasure: joined %d bytes, want %d", len(out), n)
	}
	return out, nil
}

// Encode appends m parity shards to the k data shards, returning the full
// k+m shard set. The input shards must all be the same length.
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, ErrShardCount
	}
	size := len(data[0])
	for _, s := range data {
		if len(s) != size {
			return nil, ErrShardSizeMixed
		}
	}
	all := make([][]byte, c.k+c.m)
	copy(all, data)
	for i := 0; i < c.m; i++ {
		p := make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(p, data[j], c.parityRows[i][j])
		}
		all[c.k+i] = p
	}
	return all, nil
}

// Reconstruct fills in missing (nil) shards in place. The slice must have
// k+m entries; at least k must be non-nil. Both data and parity shards are
// regenerated.
func (c *Coder) Reconstruct(shards [][]byte) error {
	if len(shards) < c.k+c.m {
		return ErrShortShardSlice
	}
	size := -1
	present := 0
	for _, s := range shards {
		if s != nil {
			if size < 0 {
				size = len(s)
			} else if len(s) != size {
				return ErrShardSizeMixed
			}
			present++
		}
	}
	if present < c.k {
		return ErrTooFewShards
	}
	if present == c.k+c.m {
		return nil
	}

	// Build the sub-generator: choose the first k present shards; each row
	// expresses that shard as a combination of data shards (identity rows
	// for data shards, parity rows for parity shards).
	rows := make([][]byte, 0, c.k)
	sub := make([][]byte, 0, c.k)
	for idx := 0; idx < c.k+c.m && len(rows) < c.k; idx++ {
		if shards[idx] == nil {
			continue
		}
		row := make([]byte, c.k)
		if idx < c.k {
			row[idx] = 1
		} else {
			copy(row, c.parityRows[idx-c.k])
		}
		rows = append(rows, row)
		sub = append(sub, shards[idx])
	}
	inv, err := invertMatrix(rows)
	if err != nil {
		return err
	}

	// Recover missing data shards: data[j] = sum_i inv[j][i] * sub[i].
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			continue
		}
		d := make([]byte, size)
		for i := 0; i < c.k; i++ {
			mulAddSlice(d, sub[i], inv[j][i])
		}
		shards[j] = d
	}
	// Recompute missing parity shards from the (now complete) data shards.
	for i := 0; i < c.m; i++ {
		if shards[c.k+i] != nil {
			continue
		}
		p := make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(p, shards[j], c.parityRows[i][j])
		}
		shards[c.k+i] = p
	}
	return nil
}

// Repair rebuilds the shards at the given indices from the survivors: the
// bad shards are discarded (a corrupt shard is worse than a missing one —
// it would poison reconstruction) and regenerated in place. It returns the
// indices actually rebuilt, sorted ascending. ErrTooFewShards is returned
// when more than m shards are bad.
func (c *Coder) Repair(shards [][]byte, bad []int) ([]int, error) {
	if len(shards) < c.k+c.m {
		return nil, ErrShortShardSlice
	}
	rebuilt := make([]int, 0, len(bad))
	for _, idx := range bad {
		if idx < 0 || idx >= c.k+c.m {
			return nil, fmt.Errorf("erasure: repair index %d out of range", idx)
		}
		if shards[idx] != nil {
			shards[idx] = nil
		}
	}
	for _, idx := range bad {
		rebuilt = append(rebuilt, idx)
	}
	sort.Ints(rebuilt)
	// Deduplicate (a shard can be both reported missing and corrupt).
	dedup := rebuilt[:0]
	for i, idx := range rebuilt {
		if i == 0 || idx != rebuilt[i-1] {
			dedup = append(dedup, idx)
		}
	}
	rebuilt = dedup
	if err := c.Reconstruct(shards); err != nil {
		return nil, err
	}
	return rebuilt, nil
}

// Verify checks that the parity shards are consistent with the data shards.
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.k+c.m {
		return false, ErrShardCount
	}
	size := len(shards[0])
	for _, s := range shards {
		if s == nil || len(s) != size {
			return false, ErrShardSizeMixed
		}
	}
	for i := 0; i < c.m; i++ {
		p := make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(p, shards[j], c.parityRows[i][j])
		}
		for b := range p {
			if p[b] != shards[c.k+i][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// EncodeBlob is a convenience: split + encode in one call, returning the
// k+m shards and the original length (needed by DecodeBlob).
func (c *Coder) EncodeBlob(data []byte) ([][]byte, int, error) {
	split, err := c.Split(data)
	if err != nil {
		return nil, 0, err
	}
	shards, err := c.Encode(split)
	if err != nil {
		return nil, 0, err
	}
	return shards, len(data), nil
}

// DecodeBlob reconstructs the original byte blob from a (possibly
// incomplete) shard set and the original length.
func (c *Coder) DecodeBlob(shards [][]byte, n int) ([]byte, error) {
	work := make([][]byte, len(shards))
	copy(work, shards)
	if err := c.Reconstruct(work); err != nil {
		return nil, err
	}
	return c.Join(work[:c.k], n)
}

// StorageOverhead returns the storage expansion factor (k+m)/k. Full
// replication with r copies has factor r; RS typically does much better for
// the same loss tolerance — one of the ablations DESIGN.md calls out.
func (c *Coder) StorageOverhead() float64 {
	return float64(c.k+c.m) / float64(c.k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
