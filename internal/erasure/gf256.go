// Package erasure implements systematic Reed-Solomon erasure coding over
// GF(2^8), the mechanism the paper's §IV-A names for preserving data-attic
// contents across unreliable peers ("redundantly encoding the contents —
// e.g., using erasure codes — and storing pieces with a variety of peers").
//
// A (k, m) code splits data into k shards and adds m parity shards; any k of
// the k+m shards reconstruct the original data.
package erasure

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D), under which 2 generates the multiplicative group — the standard
// Reed-Solomon field. Log/exp tables are built at package init.

const gfPoly = 0x11D

var (
	gfExp [512]byte // doubled to avoid mod-255 in mul
	gfLog [256]byte
)

// Table construction is deterministic pure computation; this is one of the
// sanctioned uses of init (precomputed lookup tables).
func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

func gfInv(a byte) byte {
	if a == 0 {
		panic("erasure: inverse of zero in GF(256)")
	}
	return gfExp[255-int(gfLog[a])]
}

func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return gfExp[(int(gfLog[a])*n)%255]
}

// gfMulTable[c][x] = c*x in GF(2^8). The 64 KB table turns the per-byte
// log/exp arithmetic (two loads, an add, a zero-test branch) in the coding
// hot loop into a single indexed load from a row that stays cache-resident
// for the duration of a shard pass.
var gfMulTable [256][256]byte

// Runs after the log/exp init above (init functions in one file execute in
// source order), so gfMul is ready.
func init() {
	for c := 0; c < 256; c++ {
		for x := 0; x < 256; x++ {
			gfMulTable[c][x] = gfMul(byte(c), byte(x))
		}
	}
}

// mulAddSlice computes dst[i] ^= c * src[i] for all i (accumulating
// product). This is the inner loop of encode/reconstruct: one call per
// matrix cell over a whole shard. The body is 8-way unrolled over
// fixed-size subslices; the re-slice of dst and the three-index subslice
// expressions let the compiler hoist bounds checks out of the loop.
func mulAddSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	mt := &gfMulTable[c]
	dst = dst[:len(src)] // one bounds check up front instead of per byte
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= mt[s[0]]
		d[1] ^= mt[s[1]]
		d[2] ^= mt[s[2]]
		d[3] ^= mt[s[3]]
		d[4] ^= mt[s[4]]
		d[5] ^= mt[s[5]]
		d[6] ^= mt[s[6]]
		d[7] ^= mt[s[7]]
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= mt[src[i]]
	}
}
