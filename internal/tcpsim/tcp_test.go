package tcpsim

import (
	"math"
	"testing"
	"testing/quick"

	"hpop/internal/sim"
)

func gigPath() Path {
	return Path{RTT: 0.050, Bandwidth: 1e9}
}

// TestPaperSlowStartClaim reproduces the §IV-D claim: "over a 1 Gbps network
// path with a 50 msec RTT a TCP connection will require 10 RTTs and over
// 14 MB of data before utilizing the available capacity."
func TestPaperSlowStartClaim(t *testing.T) {
	rounds, bytes := TimeToFillPipe(gigPath())
	if rounds != 10 {
		t.Errorf("rounds to fill pipe = %d, want 10 (paper claim)", rounds)
	}
	if bytes < 14e6 {
		t.Errorf("bytes before capacity = %.1f MB, want > 14 MB (paper claim)", bytes/1e6)
	}
	if bytes > 20e6 {
		t.Errorf("bytes before capacity = %.1f MB, implausibly high", bytes/1e6)
	}
}

func TestBDPSegments(t *testing.T) {
	// 1 Gbps x 50 ms = 6.25 MB = ~4280 segments of 1460 B.
	got := gigPath().BDPSegments()
	if math.Abs(got-4280.8) > 1 {
		t.Errorf("BDPSegments = %v, want ~4280.8", got)
	}
}

func TestTransferSmallObjectRTTBound(t *testing.T) {
	// A 10 KB object (7 segments) fits in the initial window: one round.
	st := Transfer(gigPath(), 10e3, nil)
	if st.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", st.Rounds)
	}
	// Latency-dominated: roughly half an RTT plus serialization.
	if st.Duration < 0.025 || st.Duration > 0.05 {
		t.Errorf("duration = %v, want latency-dominated (~25ms)", st.Duration)
	}
}

func TestTransferLargeApproachesCapacity(t *testing.T) {
	// A 1 GB transfer should achieve a large fraction of the 1 Gbps link.
	st := Transfer(gigPath(), 1e9, nil)
	rate := st.MeanRateBps()
	if rate < 0.8e9 {
		t.Errorf("mean rate = %.0f bps, want > 0.8 Gbps for 1 GB transfer", rate)
	}
	if rate > 1e9+1 {
		t.Errorf("mean rate %.0f exceeds link capacity", rate)
	}
}

func TestTransferRateMonotoneInSize(t *testing.T) {
	// Bigger transfers amortize slow start: achieved rate grows with size.
	prev := 0.0
	for _, size := range []float64{1e4, 1e5, 1e6, 1e7, 1e8} {
		rate := Transfer(gigPath(), size, nil).MeanRateBps()
		if rate < prev {
			t.Errorf("rate not monotone: size %g got %.0f < previous %.0f", size, rate, prev)
		}
		prev = rate
	}
}

func TestTransferMostTransfersFarFromCapacity(t *testing.T) {
	// The paper: "Most transfers carry nowhere near enough data to achieve
	// these speeds." A 100 KB page transfer achieves only a small fraction
	// of a 1 Gbps path.
	rate := Transfer(gigPath(), 100e3, nil).MeanRateBps()
	if rate > 0.05e9 {
		t.Errorf("100 KB transfer rate = %.2f Mbps; expected <5%% of capacity", rate/1e6)
	}
}

func TestTransferHandshakeAddsRTT(t *testing.T) {
	base := Transfer(gigPath(), 10e3, nil)
	hs := Transfer(gigPath(), 10e3, nil, WithHandshake())
	diff := float64(hs.Duration - base.Duration)
	if math.Abs(diff-0.050) > 1e-9 {
		t.Errorf("handshake added %v, want 50ms", diff)
	}
}

func TestTransferInitialCwndOption(t *testing.T) {
	// IW=1 makes a 10 KB (7-segment) transfer take 3 rounds (1+2+4).
	st := Transfer(gigPath(), 10e3, nil, WithInitialCwnd(1))
	if st.Rounds != 3 {
		t.Errorf("IW1 rounds = %d, want 3", st.Rounds)
	}
}

func TestTransferLossReducesThroughput(t *testing.T) {
	rng := sim.NewRNG(42)
	lossy := Path{RTT: 0.050, Bandwidth: 1e9, Loss: 0.01}
	clean := Transfer(gigPath(), 50e6, nil).MeanRateBps()
	dirty := Transfer(lossy, 50e6, rng).MeanRateBps()
	if dirty >= clean/2 {
		t.Errorf("1%% loss rate %.1f Mbps not well below clean %.1f Mbps", dirty/1e6, clean/1e6)
	}
	if dirty <= 0 {
		t.Error("lossy transfer made no progress")
	}
}

func TestTransferMathisShape(t *testing.T) {
	// Throughput under random loss should fall roughly like 1/sqrt(p):
	// quadrupling loss should roughly halve the rate (within loose factors,
	// this is a stochastic model).
	rate := func(p float64, seed uint64) float64 {
		rng := sim.NewRNG(seed)
		path := Path{RTT: 0.050, Bandwidth: 10e9, Loss: p} // bw not binding
		var sum float64
		const reps = 5
		for i := 0; i < reps; i++ {
			sum += Transfer(path, 20e6, rng).MeanRateBps()
		}
		return sum / reps
	}
	r1 := rate(0.001, 1)
	r4 := rate(0.004, 2)
	ratio := r1 / r4
	if ratio < 1.3 || ratio > 3.5 {
		t.Errorf("rate(p)/rate(4p) = %.2f, want ~2 (Mathis 1/sqrt(p) shape)", ratio)
	}
}

func TestTransferTimeline(t *testing.T) {
	st := Transfer(gigPath(), 1e6, nil, WithTimeline())
	if len(st.Timeline) != st.Rounds {
		t.Fatalf("timeline length %d != rounds %d", len(st.Timeline), st.Rounds)
	}
	// Slow start: cwnd doubles between early rounds.
	if st.Timeline[0].Cwnd != 20 {
		t.Errorf("cwnd after round 1 = %v, want 20 (doubled IW10)", st.Timeline[0].Cwnd)
	}
	last := st.Timeline[len(st.Timeline)-1]
	if last.BytesSent != 1e6 {
		t.Errorf("final BytesSent = %v, want 1e6", last.BytesSent)
	}
}

func TestComposePaths(t *testing.T) {
	a := Path{RTT: 0.020, Bandwidth: 1e9, Loss: 0.01}
	b := Path{RTT: 0.030, Bandwidth: 500e6, Loss: 0.02}
	c := Compose(a, b, 0)
	if c.RTT != 0.050 {
		t.Errorf("RTT = %v, want 0.05", c.RTT)
	}
	if c.Bandwidth != 500e6 {
		t.Errorf("Bandwidth = %v, want min 500e6", c.Bandwidth)
	}
	wantLoss := 1 - 0.99*0.98
	if math.Abs(c.Loss-wantLoss) > 1e-12 {
		t.Errorf("Loss = %v, want %v", c.Loss, wantLoss)
	}
}

func TestComposeVPNOverheadIs36Bytes(t *testing.T) {
	// The paper: VPN tunneling adds 36 bytes of per-packet overhead; NAT
	// adds none. Goodput ratio must be 1460/1496.
	a := Path{RTT: 0.010, Bandwidth: 1e9}
	b := Path{RTT: 0.010, Bandwidth: 1e9}
	vpn := Compose(a, b, 36)
	nat := Compose(a, b, 0)
	wantRatio := 1460.0 / 1496.0
	gotRatio := vpn.Bandwidth / nat.Bandwidth
	if math.Abs(gotRatio-wantRatio) > 1e-9 {
		t.Errorf("VPN/NAT bandwidth ratio = %v, want %v", gotRatio, wantRatio)
	}
}

func TestTransferZeroLossDeterministic(t *testing.T) {
	a := Transfer(gigPath(), 5e6, nil)
	b := Transfer(gigPath(), 5e6, nil)
	if a.Duration != b.Duration || a.Rounds != b.Rounds {
		t.Error("loss-free transfers not deterministic")
	}
}

// Property: transfer duration is at least the ideal serialization time and
// at least half an RTT, for any size.
func TestTransferLowerBoundProperty(t *testing.T) {
	f := func(kb uint16) bool {
		size := float64(kb)*1024 + 1
		st := Transfer(gigPath(), size, nil)
		ideal := size * 8 / 1e9
		return float64(st.Duration) >= ideal && float64(st.Duration) >= 0.025
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: all bytes are always delivered, even under heavy loss.
func TestTransferCompletesUnderLossProperty(t *testing.T) {
	f := func(seed uint64, lossPct uint8) bool {
		loss := float64(lossPct%20) / 100
		p := Path{RTT: 0.02, Bandwidth: 100e6, Loss: loss}
		st := Transfer(p, 500e3, sim.NewRNG(seed))
		return st.Bytes == 500e3 && st.Duration > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
