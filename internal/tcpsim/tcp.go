// Package tcpsim models TCP and MPTCP protocol dynamics.
//
// Two models live here:
//
//   - A round-based single-connection model (Transfer, TimeToFillPipe): slow
//     start from IW10, NewReno-style congestion avoidance and halving, and a
//     bandwidth-delay cap. This reproduces the paper's §IV-D observation that
//     a 1 Gbps x 50 ms path needs ~10 RTTs and >14 MB before TCP utilizes the
//     capacity.
//
//   - A tick-based MPTCP session model (Session): multiple subflows with
//     independent congestion state, a pluggable packet scheduler (minRTT as
//     in stock MPTCP, plus round-robin), dynamic subflow add/withdraw, and
//     client-side ACK-delay manipulation that inflates a subflow's perceived
//     RTT to steer the sender's minRTT scheduler away from it — the paper's
//     §IV-C mechanism for indirectly controlling the server's detour usage.
//
// The fluid network simulator (internal/netsim) answers bandwidth-sharing
// questions; this package answers protocol-dynamics questions. The detour
// experiments compose the two through Path composition helpers.
package tcpsim

import (
	"errors"
	"math"

	"hpop/internal/sim"
)

// DefaultMSS is the standard Ethernet-derived maximum segment size.
const DefaultMSS = 1460

// InitialWindow is the IW10 initial congestion window (RFC 6928).
const InitialWindow = 10

// Path describes one network path as TCP sees it.
type Path struct {
	RTT       sim.Time // round-trip time
	Bandwidth float64  // bottleneck capacity, bits/sec
	Loss      float64  // per-packet random loss probability
	MSS       int      // segment size in bytes; 0 means DefaultMSS
}

func (p Path) mss() float64 {
	if p.MSS <= 0 {
		return DefaultMSS
	}
	return float64(p.MSS)
}

// BDPSegments returns the path's bandwidth-delay product in segments.
func (p Path) BDPSegments() float64 {
	return p.Bandwidth * float64(p.RTT) / 8 / p.mss()
}

// Compose concatenates two path segments as a detour does (client->waypoint,
// waypoint->server): RTTs add, bandwidth is the min, losses combine
// independently, and tunnel encapsulation overhead (extra header bytes per
// packet, e.g. 36 for the paper's VPN tunnel) reduces goodput by shrinking
// the effective payload per MTU-sized packet.
func Compose(a, b Path, overheadBytes int) Path {
	mss := math.Min(a.mss(), b.mss())
	bw := math.Min(a.Bandwidth, b.Bandwidth)
	if overheadBytes > 0 {
		bw *= mss / (mss + float64(overheadBytes))
	}
	return Path{
		RTT:       a.RTT + b.RTT,
		Bandwidth: bw,
		Loss:      1 - (1-a.Loss)*(1-b.Loss),
		MSS:       int(mss),
	}
}

// RoundSample records connection state at the end of one RTT round.
type RoundSample struct {
	Round     int
	Time      sim.Time
	Cwnd      float64 // segments
	BytesSent float64 // cumulative
	RateBps   float64 // achieved rate during this round
	Loss      bool
}

// TransferStats summarizes a simulated transfer.
type TransferStats struct {
	Duration  sim.Time
	Rounds    int
	Losses    int
	Bytes     float64
	Timeline  []RoundSample
	FinalCwnd float64
}

// MeanRateBps returns bytes*8/duration.
func (s TransferStats) MeanRateBps() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return s.Bytes * 8 / float64(s.Duration)
}

// transferOpts collects Transfer options.
type transferOpts struct {
	recordTimeline bool
	handshake      bool
	initialCwnd    float64
}

// TransferOption customizes Transfer.
type TransferOption func(*transferOpts)

// WithTimeline records a per-round timeline in the returned stats.
func WithTimeline() TransferOption {
	return func(o *transferOpts) { o.recordTimeline = true }
}

// WithHandshake charges one extra RTT for connection establishment.
func WithHandshake() TransferOption {
	return func(o *transferOpts) { o.handshake = true }
}

// WithInitialCwnd overrides the IW10 initial window (in segments).
func WithInitialCwnd(segs float64) TransferOption {
	return func(o *transferOpts) {
		if segs > 0 {
			o.initialCwnd = segs
		}
	}
}

// Transfer simulates sending `bytes` over the path with a single TCP
// connection and returns timing statistics. rng drives random loss; pass nil
// for a loss-free deterministic run (required if p.Loss > 0).
func Transfer(p Path, bytes float64, rng *sim.RNG, opts ...TransferOption) TransferStats {
	o := transferOpts{initialCwnd: InitialWindow}
	for _, fn := range opts {
		fn(&o)
	}
	if p.Loss > 0 && rng == nil {
		panic("tcpsim: lossy path requires an RNG")
	}

	mss := p.mss()
	bdp := p.BDPSegments()
	cwnd := o.initialCwnd
	ssthresh := math.Inf(1)
	remaining := bytes
	var t sim.Time
	if o.handshake {
		t += p.RTT
	}
	stats := TransferStats{Bytes: bytes}

	for remaining > 0 {
		// Segments the sender can emit this round: limited by cwnd and by
		// what is left. The path drains at most bdp segments per RTT; cwnd
		// beyond bdp sits in the bottleneck queue, so goodput caps at bdp.
		want := math.Ceil(remaining / mss)
		segs := math.Min(cwnd, want)
		delivered := math.Min(segs, math.Max(bdp, 1))
		moved := math.Min(delivered*mss, remaining)

		// Loss this round: at least one of the delivered segments dropped.
		lost := false
		if p.Loss > 0 {
			pRound := 1 - math.Pow(1-p.Loss, delivered)
			lost = rng.Float64() < pRound
		}

		// Round duration: a full RTT, except the final round which only
		// needs the serialization time of the residue (plus half an RTT for
		// the data to arrive).
		// Round duration: a full RTT, except the final round, where the
		// sender bursts the residue at line rate and the transfer ends when
		// the last byte arrives (half an RTT of one-way delay later).
		var dt sim.Time
		if moved >= remaining {
			dt = sim.Time(moved*8/p.Bandwidth) + p.RTT/2
		} else {
			dt = p.RTT
		}

		remaining -= moved
		t += dt
		stats.Rounds++
		if lost {
			stats.Losses++
			ssthresh = math.Max(cwnd/2, 2)
			cwnd = ssthresh // fast recovery (NewReno): resume at ssthresh
		} else if cwnd < ssthresh {
			cwnd *= 2 // slow start
		} else {
			cwnd++ // congestion avoidance
		}
		if o.recordTimeline {
			stats.Timeline = append(stats.Timeline, RoundSample{
				Round:     stats.Rounds,
				Time:      t,
				Cwnd:      cwnd,
				BytesSent: bytes - remaining,
				RateBps:   moved * 8 / float64(dt),
				Loss:      lost,
			})
		}
		if stats.Rounds > 10_000_000 {
			break // safety valve; never hit by sane parameters
		}
	}
	stats.Duration = t
	stats.FinalCwnd = cwnd
	return stats
}

// TimeToFillPipe computes, on a loss-free path, how many RTT rounds slow
// start needs before the congestion window reaches the bandwidth-delay
// product, and how many bytes have been transferred by the end of that round.
// For a 1 Gbps x 50 ms path this reproduces the paper's "10 RTTs and over
// 14 MB" claim.
func TimeToFillPipe(p Path) (rounds int, bytesBefore float64) {
	mss := p.mss()
	bdp := p.BDPSegments()
	cwnd := float64(InitialWindow)
	var sent float64
	for cwnd < bdp {
		sent += cwnd * mss
		cwnd *= 2
		rounds++
	}
	// The round during which cwnd first covers the BDP still transfers at
	// below-capacity average rate; count it and its bytes.
	sent += cwnd * mss
	rounds++
	return rounds, sent
}

// ErrNoActiveSubflow is returned when a session transfer is attempted with
// every subflow withdrawn.
var ErrNoActiveSubflow = errors.New("tcpsim: no active subflow")
