package tcpsim

import (
	"fmt"
	"math"
	"sort"

	"hpop/internal/sim"
)

// SchedulerPolicy selects which subflow receives the next packets when the
// sender has data and multiple subflows have congestion-window space.
type SchedulerPolicy int

// Scheduler policies. MinRTT is the stock Linux MPTCP default; the paper's
// ACK-delay steering mechanism targets exactly this policy.
const (
	MinRTT SchedulerPolicy = iota + 1
	RoundRobin
)

// String implements fmt.Stringer.
func (p SchedulerPolicy) String() string {
	switch p {
	case MinRTT:
		return "minRTT"
	case RoundRobin:
		return "roundRobin"
	default:
		return fmt.Sprintf("SchedulerPolicy(%d)", int(p))
	}
}

// ackEvent records in-flight packets whose fate is learned at time `at`:
// `acked` arrived, `lost` were dropped and must be retransmitted.
type ackEvent struct {
	at    sim.Time
	acked float64
	lost  float64
}

// Subflow is one MPTCP subflow with its own congestion state.
type Subflow struct {
	// Path is the subflow's network path (direct, or composed through a
	// waypoint via Compose).
	Path Path
	// AckDelay is extra delay the receiver adds to subflow-level ACKs. The
	// sender's perceived RTT becomes Path.RTT + AckDelay, so the minRTT
	// scheduler deprioritizes the subflow — the client-side steering knob
	// from §IV-C.
	AckDelay sim.Time

	// Label identifies the subflow in results ("direct", "waypoint-3", ...).
	Label string

	active    bool
	cwnd      float64 // packets
	ssthresh  float64
	inflight  float64
	acks      []ackEvent
	delivered float64 // cumulative packets delivered
	lastCut   sim.Time
	rrTurn    int // round-robin bookkeeping
}

// PerceivedRTT is the RTT the sender's scheduler observes.
func (sf *Subflow) PerceivedRTT() sim.Time { return sf.Path.RTT + sf.AckDelay }

// Active reports whether the subflow is currently part of the session.
func (sf *Subflow) Active() bool { return sf.active }

// DeliveredBytes returns cumulative goodput carried by this subflow.
func (sf *Subflow) DeliveredBytes() float64 { return sf.delivered * sf.Path.mss() }

func (sf *Subflow) reset() {
	sf.cwnd = InitialWindow
	sf.ssthresh = math.Inf(1)
	sf.inflight = 0
	sf.acks = nil
	sf.lastCut = -1
}

// Session is an MPTCP connection composed of subflows. It is simulated at a
// fixed tick granularity: each tick the scheduler hands backlog packets to
// subflows with window space, deliveries complete one RTT after sending, and
// random loss halves the owning subflow's window (at most once per RTT, as
// fast recovery does).
type Session struct {
	Scheduler SchedulerPolicy

	subflows []*Subflow
	now      sim.Time
	tick     sim.Time
	rng      *sim.RNG
	rrNext   int
}

// NewSession creates a session with the given scheduler policy and RNG (used
// for loss; may be nil if all paths are loss-free).
func NewSession(policy SchedulerPolicy, rng *sim.RNG) *Session {
	if policy == 0 {
		policy = MinRTT
	}
	return &Session{Scheduler: policy, rng: rng}
}

// AddSubflow joins a new subflow on the given path, returning it for later
// control (ACK delay, withdrawal). Subflows start in slow start, as a fresh
// MPTCP join does.
func (s *Session) AddSubflow(path Path, label string) *Subflow {
	sf := &Subflow{Path: path, Label: label, active: true}
	sf.reset()
	s.subflows = append(s.subflows, sf)
	return sf
}

// Withdraw removes a subflow from the session (the client closing a subflow
// to drop an undesirable detour). In-flight data is considered lost and is
// returned to the backlog by the transfer loop.
func (s *Session) Withdraw(sf *Subflow) {
	sf.active = false
}

// Rejoin reactivates a withdrawn subflow with fresh congestion state.
func (s *Session) Rejoin(sf *Subflow) {
	sf.reset()
	sf.active = true
}

// Subflows returns the session's subflows (active and withdrawn).
func (s *Session) Subflows() []*Subflow {
	out := make([]*Subflow, len(s.subflows))
	copy(out, s.subflows)
	return out
}

func (s *Session) activeSubflows() []*Subflow {
	var out []*Subflow
	for _, sf := range s.subflows {
		if sf.active {
			out = append(out, sf)
		}
	}
	return out
}

// minTick returns the simulation tick: a quarter of the smallest active RTT.
func (s *Session) minTick() sim.Time {
	minRTT := sim.Time(math.Inf(1))
	for _, sf := range s.subflows {
		if sf.active && sf.Path.RTT < minRTT {
			minRTT = sf.Path.RTT
		}
	}
	if math.IsInf(float64(minRTT), 1) {
		return 0
	}
	t := minRTT / 4
	if t <= 0 {
		t = sim.Time(0.0001)
	}
	return t
}

// step advances the session by one tick with the given backlog (packets
// ready to send, across all subflows). It returns packets handed to the
// network this tick and packets whose loss was detected this tick (which
// the caller returns to the backlog for retransmission).
func (s *Session) step(backlog float64) (sent, lostRecovered float64) {
	s.now += s.tick
	// Process ACK/loss arrivals: shrink inflight, grow cwnd, recover losses.
	for _, sf := range s.subflows {
		if !sf.active {
			continue
		}
		var kept []ackEvent
		for _, ev := range sf.acks {
			if ev.at <= s.now {
				sf.inflight -= ev.acked + ev.lost
				if sf.inflight < 0 {
					sf.inflight = 0
				}
				sf.delivered += ev.acked
				lostRecovered += ev.lost
				// Window growth proportional to acked packets.
				if sf.cwnd < sf.ssthresh {
					sf.cwnd += ev.acked // slow start: +1 per ACK
				} else {
					sf.cwnd += ev.acked / sf.cwnd // CA: +1 per RTT
				}
			} else {
				kept = append(kept, ev)
			}
		}
		sf.acks = kept
	}

	// Scheduler: order subflows, hand out backlog to window space.
	order := s.activeSubflows()
	switch s.Scheduler {
	case RoundRobin:
		if len(order) > 0 {
			r := s.rrNext % len(order)
			order = append(order[r:], order[:r]...)
			s.rrNext++
		}
	default: // MinRTT
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].PerceivedRTT() < order[j].PerceivedRTT()
		})
	}

	for _, sf := range order {
		if backlog <= 0 {
			break
		}
		space := sf.cwnd - sf.inflight
		if space <= 0 {
			continue
		}
		// Per-tick pacing cap: the path can't absorb more than bw*tick.
		paceCap := sf.Path.Bandwidth * float64(s.tick) / 8 / sf.Path.mss()
		n := math.Min(space, math.Min(backlog, paceCap))
		if n <= 0 {
			continue
		}
		backlog -= n
		sent += n
		sf.inflight += n

		// Loss: bernoulli over the burst; halve at most once per RTT. Lost
		// packets surface at ACK time and return to the backlog for
		// retransmission (possibly on another subflow, as MPTCP does).
		lost := 0.0
		if sf.Path.Loss > 0 && s.rng != nil {
			pBurst := 1 - math.Pow(1-sf.Path.Loss, n)
			if s.rng.Float64() < pBurst {
				lost = math.Max(1, n*sf.Path.Loss)
				if lost > n {
					lost = n
				}
				if sf.lastCut < 0 || s.now-sf.lastCut >= sf.Path.RTT {
					sf.ssthresh = math.Max(sf.cwnd/2, 2)
					sf.cwnd = sf.ssthresh
					sf.lastCut = s.now
				}
			}
		}
		// Delivered packets are ACKed one (perceived) RTT later; the ACK
		// delay postpones window growth, which is exactly how receiver-side
		// steering slows the sender on this subflow.
		sf.acks = append(sf.acks, ackEvent{
			at:    s.now + sf.PerceivedRTT(),
			acked: n - lost,
			lost:  lost,
		})
	}
	return sent, lostRecovered
}

// SessionStats reports the outcome of a bulk Transfer.
type SessionStats struct {
	Duration sim.Time
	Bytes    float64
	// PerSubflow maps subflow label -> bytes carried.
	PerSubflow map[string]float64
}

// MeanRateBps returns aggregate goodput.
func (st SessionStats) MeanRateBps() float64 {
	if st.Duration <= 0 {
		return 0
	}
	return st.Bytes * 8 / float64(st.Duration)
}

// Share returns the fraction of bytes carried by the labeled subflow.
func (st SessionStats) Share(label string) float64 {
	if st.Bytes <= 0 {
		return 0
	}
	return st.PerSubflow[label] / st.Bytes
}

// Transfer simulates a bulk transfer of `bytes` over the session, returning
// per-subflow accounting. The transfer runs until all bytes are delivered or
// maxTime elapses (0 = no limit).
func (s *Session) Transfer(bytes float64, maxTime sim.Time) (SessionStats, error) {
	active := s.activeSubflows()
	if len(active) == 0 {
		return SessionStats{}, ErrNoActiveSubflow
	}
	s.now = 0
	for _, sf := range s.subflows {
		sf.delivered = 0
	}
	s.tick = s.minTick()
	mss := active[0].Path.mss()
	totalPackets := math.Ceil(bytes / mss)

	handed := 0.0 // packets given to subflows so far
	deliveredAll := func() float64 {
		var d float64
		for _, sf := range s.subflows {
			d += sf.delivered
		}
		return d
	}
	// Floating-point packet fractions can leave delivered asymptotically
	// below the target; treat within-half-a-packet as done, and bound the
	// loop as a backstop (ticks are >= minRTT/4, so this allows simulated
	// hours — far beyond any meaningful transfer).
	const eps = 0.5
	for tick := 0; deliveredAll() < totalPackets-eps; tick++ {
		if maxTime > 0 && s.now >= maxTime {
			break
		}
		if tick > 50_000_000 {
			break // safety valve
		}
		backlog := totalPackets - handed
		if backlog < 0 {
			backlog = 0
		}
		sent, lost := s.step(backlog)
		handed += sent - lost // losses rejoin the backlog
		// Withdrawn subflows strand their in-flight packets; return them to
		// the backlog (MPTCP retransmits on other subflows).
		for _, sf := range s.subflows {
			if !sf.active && sf.inflight > 0 {
				handed -= sf.inflight
				sf.inflight = 0
				sf.acks = nil
			}
		}
		if s.tick <= 0 {
			return SessionStats{}, ErrNoActiveSubflow
		}
	}
	st := SessionStats{
		Duration:   s.now,
		PerSubflow: make(map[string]float64, len(s.subflows)),
	}
	for _, sf := range s.subflows {
		st.PerSubflow[sf.Label] += sf.DeliveredBytes()
		st.Bytes += sf.DeliveredBytes()
	}
	return st, nil
}

// RunDemand simulates an application-limited sender producing demandBps for
// the given duration and returns per-subflow byte counts. This exposes
// scheduler behaviour: with demand below aggregate capacity, the minRTT
// policy concentrates traffic on the lowest-perceived-RTT subflows, so
// inflating a subflow's AckDelay visibly shifts its share.
func (s *Session) RunDemand(demandBps float64, dur sim.Time) (map[string]float64, error) {
	active := s.activeSubflows()
	if len(active) == 0 {
		return nil, ErrNoActiveSubflow
	}
	s.now = 0
	for _, sf := range s.subflows {
		sf.delivered = 0
	}
	s.tick = s.minTick()
	mss := active[0].Path.mss()
	var backlog float64
	for s.now < dur {
		backlog += demandBps * float64(s.tick) / 8 / mss
		sent, lost := s.step(backlog)
		backlog -= sent - lost // losses rejoin the backlog
	}
	out := make(map[string]float64, len(s.subflows))
	for _, sf := range s.subflows {
		out[sf.Label] += sf.DeliveredBytes()
	}
	return out, nil
}
