package tcpsim

import (
	"testing"

	"hpop/internal/sim"
)

func BenchmarkTransfer10MBCleanPath(b *testing.B) {
	p := Path{RTT: 0.050, Bandwidth: 1e9}
	for i := 0; i < b.N; i++ {
		Transfer(p, 10e6, nil)
	}
}

func BenchmarkTransfer10MBLossyPath(b *testing.B) {
	p := Path{RTT: 0.050, Bandwidth: 1e9, Loss: 0.01}
	rng := sim.NewRNG(1)
	for i := 0; i < b.N; i++ {
		Transfer(p, 10e6, rng)
	}
}

func BenchmarkSessionTwoSubflows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSession(MinRTT, nil)
		s.AddSubflow(Path{RTT: 0.030, Bandwidth: 100e6}, "a")
		s.AddSubflow(Path{RTT: 0.050, Bandwidth: 100e6}, "b")
		if _, err := s.Transfer(5e6, 0); err != nil {
			b.Fatal(err)
		}
	}
}
