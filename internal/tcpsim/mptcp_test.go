package tcpsim

import (
	"math"
	"testing"

	"hpop/internal/sim"
)

// directLossy is the paper's motivating case: a poor native IP route.
func directLossy() Path {
	return Path{RTT: 0.100, Bandwidth: 50e6, Loss: 0.02}
}

// goodDetour composes client->waypoint and waypoint->server legs that are
// individually clean, as detour studies observe.
func goodDetour(overhead int) Path {
	return Compose(
		Path{RTT: 0.020, Bandwidth: 500e6},
		Path{RTT: 0.030, Bandwidth: 500e6},
		overhead,
	)
}

func TestSessionSingleSubflowMatchesCapacity(t *testing.T) {
	s := NewSession(MinRTT, nil)
	s.AddSubflow(Path{RTT: 0.050, Bandwidth: 100e6}, "direct")
	st, err := s.Transfer(50e6, 60)
	if err != nil {
		t.Fatal(err)
	}
	rate := st.MeanRateBps()
	if rate < 70e6 || rate > 100e6 {
		t.Errorf("single-subflow rate = %.1f Mbps, want near 100", rate/1e6)
	}
}

func TestSessionNoActiveSubflow(t *testing.T) {
	s := NewSession(MinRTT, nil)
	if _, err := s.Transfer(1e6, 1); err != ErrNoActiveSubflow {
		t.Errorf("err = %v, want ErrNoActiveSubflow", err)
	}
	sf := s.AddSubflow(Path{RTT: 0.01, Bandwidth: 1e6}, "x")
	s.Withdraw(sf)
	if _, err := s.Transfer(1e6, 1); err != ErrNoActiveSubflow {
		t.Errorf("err after withdraw = %v, want ErrNoActiveSubflow", err)
	}
	s.Rejoin(sf)
	if _, err := s.Transfer(1e5, 60); err != nil {
		t.Errorf("err after rejoin = %v", err)
	}
}

func TestDetourImprovesLossyDirectPath(t *testing.T) {
	rng := sim.NewRNG(7)
	// Direct only.
	d := NewSession(MinRTT, rng)
	d.AddSubflow(directLossy(), "direct")
	dst, err := d.Transfer(20e6, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Direct + clean detour.
	m := NewSession(MinRTT, sim.NewRNG(7))
	m.AddSubflow(directLossy(), "direct")
	m.AddSubflow(goodDetour(0), "detour")
	mst, err := m.Transfer(20e6, 300)
	if err != nil {
		t.Fatal(err)
	}
	if mst.MeanRateBps() <= dst.MeanRateBps() {
		t.Errorf("detour rate %.1f Mbps not better than direct %.1f Mbps",
			mst.MeanRateBps()/1e6, dst.MeanRateBps()/1e6)
	}
	if mst.Share("detour") < 0.5 {
		t.Errorf("detour share = %.2f; clean detour should dominate a lossy direct path",
			mst.Share("detour"))
	}
}

func TestBandwidthAggregationAcrossSubflows(t *testing.T) {
	// Two clean 100 Mbps subflows should aggregate well beyond one.
	one := NewSession(MinRTT, nil)
	one.AddSubflow(Path{RTT: 0.040, Bandwidth: 100e6}, "a")
	oneStats, _ := one.Transfer(50e6, 120)

	two := NewSession(MinRTT, nil)
	two.AddSubflow(Path{RTT: 0.040, Bandwidth: 100e6}, "a")
	two.AddSubflow(Path{RTT: 0.060, Bandwidth: 100e6}, "b")
	twoStats, _ := two.Transfer(50e6, 120)

	if twoStats.MeanRateBps() < 1.5*oneStats.MeanRateBps() {
		t.Errorf("two subflows %.1f Mbps, one %.1f Mbps: aggregation too weak",
			twoStats.MeanRateBps()/1e6, oneStats.MeanRateBps()/1e6)
	}
}

func TestAckDelaySteeringShiftsShare(t *testing.T) {
	// App-limited sender at 60 Mbps over two 100 Mbps subflows. With equal
	// perceived RTTs the faster subflow takes most traffic; inflating its
	// perceived RTT via receiver ACK delay steers traffic to the other.
	build := func(delayA sim.Time) (shareA float64) {
		s := NewSession(MinRTT, nil)
		a := s.AddSubflow(Path{RTT: 0.030, Bandwidth: 100e6}, "a")
		s.AddSubflow(Path{RTT: 0.050, Bandwidth: 100e6}, "b")
		a.AckDelay = delayA
		got, err := s.RunDemand(60e6, 10)
		if err != nil {
			t.Fatal(err)
		}
		total := got["a"] + got["b"]
		if total == 0 {
			t.Fatal("no bytes delivered")
		}
		return got["a"] / total
	}
	noDelay := build(0)
	withDelay := build(0.100) // perceived RTT a: 130ms > b: 50ms
	if noDelay < 0.5 {
		t.Errorf("undelayed low-RTT subflow share = %.2f, want majority", noDelay)
	}
	if withDelay >= noDelay-0.15 {
		t.Errorf("ACK delay did not steer: share %.2f -> %.2f", noDelay, withDelay)
	}
}

func TestWithdrawMidTransferRecovers(t *testing.T) {
	// Withdrawing a subflow mid-transfer must not lose data: the transfer
	// still completes over the remaining subflow.
	s := NewSession(MinRTT, nil)
	keep := s.AddSubflow(Path{RTT: 0.040, Bandwidth: 100e6}, "keep")
	drop := s.AddSubflow(Path{RTT: 0.020, Bandwidth: 100e6}, "drop")
	_ = keep
	// Withdraw after ~1s by running a first partial transfer window.
	// (Simulate by doing a short demand run, then withdrawing, then bulk.)
	s.Withdraw(drop)
	st, err := s.Transfer(10e6, 120)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes < 10e6*0.999 {
		t.Errorf("delivered %.0f of 10e6 bytes after withdrawal", st.Bytes)
	}
	if st.PerSubflow["drop"] != 0 {
		t.Errorf("withdrawn subflow carried %v bytes", st.PerSubflow["drop"])
	}
}

func TestRoundRobinBalancesEqualPaths(t *testing.T) {
	s := NewSession(RoundRobin, nil)
	s.AddSubflow(Path{RTT: 0.040, Bandwidth: 100e6}, "a")
	s.AddSubflow(Path{RTT: 0.040, Bandwidth: 100e6}, "b")
	st, err := s.Transfer(20e6, 60)
	if err != nil {
		t.Fatal(err)
	}
	shareA := st.Share("a")
	if math.Abs(shareA-0.5) > 0.15 {
		t.Errorf("round-robin share a = %.2f, want ~0.5", shareA)
	}
}

func TestSchedulerPolicyString(t *testing.T) {
	if MinRTT.String() != "minRTT" || RoundRobin.String() != "roundRobin" {
		t.Error("policy String() wrong")
	}
	if SchedulerPolicy(99).String() == "" {
		t.Error("unknown policy String() empty")
	}
}

func TestSingleWaypointCapturesMostBenefit(t *testing.T) {
	// Paper (§IV-C): "most performance benefits can be obtained by using a
	// single waypoint." Adding a second similar detour should improve rate
	// by much less than the first did.
	rate := func(waypoints int) float64 {
		s := NewSession(MinRTT, sim.NewRNG(99))
		s.AddSubflow(directLossy(), "direct")
		for i := 0; i < waypoints; i++ {
			s.AddSubflow(goodDetour(0), "w")
		}
		st, err := s.Transfer(20e6, 300)
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanRateBps()
	}
	r0, r1, r2 := rate(0), rate(1), rate(2)
	gain1 := r1 - r0
	gain2 := r2 - r1
	if gain1 <= 0 {
		t.Fatalf("first waypoint gained nothing: %v -> %v", r0, r1)
	}
	if gain2 > gain1 {
		t.Errorf("second waypoint gain %.1f Mbps exceeds first %.1f Mbps",
			gain2/1e6, gain1/1e6)
	}
}
