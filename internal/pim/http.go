package pim

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// crudHandler exposes a jsonStore as a REST collection:
//
//	GET    /            list all documents
//	POST   /            create (JSON body) -> {"id": N}
//	GET    /{id}        read one
//	PUT    /{id}        replace
//	DELETE /{id}        delete
type crudHandler[T any] struct {
	store    *jsonStore
	validate func(*T) error
	setID    func(*T, int)
}

// ServeHTTP implements http.Handler.
func (h crudHandler[T]) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	trimmed := strings.Trim(r.URL.Path, "/")
	switch {
	case trimmed == "" && r.Method == http.MethodGet:
		h.list(w)
	case trimmed == "" && r.Method == http.MethodPost:
		h.create(w, r)
	case trimmed != "":
		id, err := strconv.Atoi(trimmed)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			h.read(w, id)
		case http.MethodPut:
			h.replace(w, r, id)
		case http.MethodDelete:
			h.remove(w, id)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (h crudHandler[T]) decode(w http.ResponseWriter, r *http.Request) (*T, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return nil, false
	}
	v := new(T)
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if h.validate != nil {
		if err := h.validate(v); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return nil, false
		}
	}
	return v, true
}

func (h crudHandler[T]) create(w http.ResponseWriter, r *http.Request) {
	v, ok := h.decode(w, r)
	if !ok {
		return
	}
	id, err := h.store.create(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if h.setID != nil {
		h.setID(v, id)
		if err := h.store.update(id, v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]int{"id": id})
}

func (h crudHandler[T]) list(w http.ResponseWriter) {
	var out []json.RawMessage
	err := h.store.each(func(id int, raw []byte) error {
		out = append(out, json.RawMessage(raw))
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (h crudHandler[T]) read(w http.ResponseWriter, id int) {
	v := new(T)
	if err := h.store.read(id, v); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (h crudHandler[T]) replace(w http.ResponseWriter, r *http.Request, id int) {
	v, ok := h.decode(w, r)
	if !ok {
		return
	}
	if h.setID != nil {
		h.setID(v, id)
	}
	if err := h.store.update(id, v); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h crudHandler[T]) remove(w http.ResponseWriter, id int) {
	if err := h.store.delete(id); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
