// Package pim implements the "myriad mundane services" §III says the HPoP
// platform hosts: "e.g., a contacts server, a calendar server, or an email
// inbox". Each is a small JSON-over-HTTP service implementing hpop.Service,
// persisting into the same vfs tree the attic exposes so the user's PIM
// data lives in their home and is reachable wherever they are.
package pim

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpop/internal/hpop"
	"hpop/internal/vfs"
)

// Store errors.
var (
	ErrNotFound = errors.New("pim: not found")
	ErrBadInput = errors.New("pim: invalid input")
)

// jsonStore is a tiny JSON-documents-in-vfs collection shared by the three
// services.
type jsonStore struct {
	fs   *vfs.FS
	root string

	mu     sync.Mutex
	nextID int
}

func newJSONStore(fs *vfs.FS, root string) (*jsonStore, error) {
	if err := fs.MkdirAll(root); err != nil {
		return nil, err
	}
	return &jsonStore{fs: fs, root: root}, nil
}

func (s *jsonStore) path(id int) string {
	return fmt.Sprintf("%s/%06d.json", s.root, id)
}

func (s *jsonStore) create(v any) (int, error) {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	data, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	if _, err := s.fs.Write(s.path(id), data); err != nil {
		return 0, err
	}
	return id, nil
}

func (s *jsonStore) read(id int, v any) error {
	data, err := s.fs.Read(s.path(id))
	if err != nil {
		return ErrNotFound
	}
	return json.Unmarshal(data, v)
}

func (s *jsonStore) update(id int, v any) error {
	if !s.fs.Exists(s.path(id)) {
		return ErrNotFound
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = s.fs.Write(s.path(id), data)
	return err
}

func (s *jsonStore) delete(id int) error {
	if err := s.fs.Delete(s.path(id), false); err != nil {
		return ErrNotFound
	}
	return nil
}

// each calls fn with every document's id and raw JSON, in id order.
func (s *jsonStore) each(fn func(id int, raw []byte) error) error {
	entries, err := s.fs.List(s.root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir || !strings.HasSuffix(e.Name, ".json") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(e.Name, ".json"))
		if err != nil {
			continue
		}
		raw, err := s.fs.Read(e.Path)
		if err != nil {
			return err
		}
		if err := fn(id, raw); err != nil {
			return err
		}
	}
	return nil
}

// ---- Contacts ----

// Contact is one address-book entry.
type Contact struct {
	ID    int    `json:"id,omitempty"`
	Name  string `json:"name"`
	Email string `json:"email,omitempty"`
	Phone string `json:"phone,omitempty"`
	Note  string `json:"note,omitempty"`
}

// Contacts is the contacts server.
type Contacts struct {
	fs    *vfs.FS
	store *jsonStore
}

var _ hpop.Service = (*Contacts)(nil)

// NewContacts creates a contacts service persisting under /pim/contacts of
// the given filesystem (pass the attic's FS to co-locate with user data).
func NewContacts(fs *vfs.FS) *Contacts {
	return &Contacts{fs: fs}
}

// Name implements hpop.Service.
func (c *Contacts) Name() string { return "contacts" }

// Start implements hpop.Service.
func (c *Contacts) Start(ctx *hpop.ServiceContext) error {
	store, err := newJSONStore(c.fs, "/pim/contacts")
	if err != nil {
		return err
	}
	c.store = store
	ctx.Mux.Handle("/contacts/", http.StripPrefix("/contacts", crudHandler[Contact]{
		store: store,
		validate: func(v *Contact) error {
			if v.Name == "" {
				return fmt.Errorf("%w: name required", ErrBadInput)
			}
			return nil
		},
		setID: func(v *Contact, id int) { v.ID = id },
	}))
	return nil
}

// Stop implements hpop.Service.
func (c *Contacts) Stop() error { return nil }

// Add inserts a contact programmatically, returning its ID.
func (c *Contacts) Add(contact Contact) (int, error) {
	if contact.Name == "" {
		return 0, fmt.Errorf("%w: name required", ErrBadInput)
	}
	id, err := c.store.create(&contact)
	if err != nil {
		return 0, err
	}
	contact.ID = id
	if err := c.store.update(id, &contact); err != nil {
		return 0, err
	}
	return id, nil
}

// Get retrieves a contact by ID.
func (c *Contacts) Get(id int) (Contact, error) {
	var out Contact
	err := c.store.read(id, &out)
	return out, err
}

// Search returns contacts whose name or email contains q (case-insensitive),
// sorted by name.
func (c *Contacts) Search(q string) ([]Contact, error) {
	q = strings.ToLower(q)
	var out []Contact
	err := c.store.each(func(id int, raw []byte) error {
		var ct Contact
		if err := json.Unmarshal(raw, &ct); err != nil {
			return nil // skip malformed
		}
		if q == "" || strings.Contains(strings.ToLower(ct.Name), q) ||
			strings.Contains(strings.ToLower(ct.Email), q) {
			ct.ID = id
			out = append(out, ct)
		}
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, err
}

// ---- Calendar ----

// Event is one calendar entry.
type Event struct {
	ID       int       `json:"id,omitempty"`
	Title    string    `json:"title"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Location string    `json:"location,omitempty"`
	Notes    string    `json:"notes,omitempty"`
}

// Calendar is the calendar server.
type Calendar struct {
	fs    *vfs.FS
	store *jsonStore
}

var _ hpop.Service = (*Calendar)(nil)

// NewCalendar creates a calendar service persisting under /pim/calendar.
func NewCalendar(fs *vfs.FS) *Calendar {
	return &Calendar{fs: fs}
}

// Name implements hpop.Service.
func (c *Calendar) Name() string { return "calendar" }

// Start implements hpop.Service.
func (c *Calendar) Start(ctx *hpop.ServiceContext) error {
	store, err := newJSONStore(c.fs, "/pim/calendar")
	if err != nil {
		return err
	}
	c.store = store
	ctx.Mux.Handle("/calendar/", http.StripPrefix("/calendar", crudHandler[Event]{
		store:    store,
		validate: validateEvent,
		setID:    func(v *Event, id int) { v.ID = id },
	}))
	return nil
}

// Stop implements hpop.Service.
func (c *Calendar) Stop() error { return nil }

func validateEvent(e *Event) error {
	if e.Title == "" {
		return fmt.Errorf("%w: title required", ErrBadInput)
	}
	if !e.End.After(e.Start) {
		return fmt.Errorf("%w: end must be after start", ErrBadInput)
	}
	return nil
}

// Add inserts an event programmatically.
func (c *Calendar) Add(e Event) (int, error) {
	if err := validateEvent(&e); err != nil {
		return 0, err
	}
	id, err := c.store.create(&e)
	if err != nil {
		return 0, err
	}
	e.ID = id
	return id, c.store.update(id, &e)
}

// Range returns events overlapping [from, to), sorted by start time.
func (c *Calendar) Range(from, to time.Time) ([]Event, error) {
	var out []Event
	err := c.store.each(func(id int, raw []byte) error {
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil
		}
		if e.Start.Before(to) && e.End.After(from) {
			e.ID = id
			out = append(out, e)
		}
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out, err
}

// ---- Inbox ----

// Message is one inbox entry.
type Message struct {
	ID       int       `json:"id,omitempty"`
	From     string    `json:"from"`
	Subject  string    `json:"subject"`
	Body     string    `json:"body"`
	Received time.Time `json:"received"`
	Read     bool      `json:"read"`
}

// Inbox is the message-inbox server.
type Inbox struct {
	fs    *vfs.FS
	store *jsonStore
	now   func() time.Time
}

var _ hpop.Service = (*Inbox)(nil)

// NewInbox creates an inbox persisting under /pim/inbox.
func NewInbox(fs *vfs.FS, now func() time.Time) *Inbox {
	if now == nil {
		now = time.Now
	}
	return &Inbox{fs: fs, now: now}
}

// Name implements hpop.Service.
func (i *Inbox) Name() string { return "inbox" }

// Start implements hpop.Service.
func (i *Inbox) Start(ctx *hpop.ServiceContext) error {
	store, err := newJSONStore(i.fs, "/pim/inbox")
	if err != nil {
		return err
	}
	i.store = store
	ctx.Mux.Handle("/inbox/", http.StripPrefix("/inbox", crudHandler[Message]{
		store: store,
		validate: func(m *Message) error {
			if m.From == "" {
				return fmt.Errorf("%w: from required", ErrBadInput)
			}
			if m.Received.IsZero() {
				m.Received = i.now()
			}
			return nil
		},
		setID: func(v *Message, id int) { v.ID = id },
	}))
	return nil
}

// Stop implements hpop.Service.
func (i *Inbox) Stop() error { return nil }

// Deliver stores an incoming message.
func (i *Inbox) Deliver(m Message) (int, error) {
	if m.From == "" {
		return 0, fmt.Errorf("%w: from required", ErrBadInput)
	}
	if m.Received.IsZero() {
		m.Received = i.now()
	}
	id, err := i.store.create(&m)
	if err != nil {
		return 0, err
	}
	m.ID = id
	return id, i.store.update(id, &m)
}

// Unread returns unread messages, newest first.
func (i *Inbox) Unread() ([]Message, error) {
	var out []Message
	err := i.store.each(func(id int, raw []byte) error {
		var m Message
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil
		}
		if !m.Read {
			m.ID = id
			out = append(out, m)
		}
		return nil
	})
	sort.Slice(out, func(a, b int) bool { return out[a].Received.After(out[b].Received) })
	return out, err
}

// MarkRead flags a message read.
func (i *Inbox) MarkRead(id int) error {
	var m Message
	if err := i.store.read(id, &m); err != nil {
		return err
	}
	m.Read = true
	return i.store.update(id, &m)
}
