package pim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"hpop/internal/hpop"
	"hpop/internal/vfs"
)

func startPIM(t *testing.T) (*hpop.HPoP, *vfs.FS, *Contacts, *Calendar, *Inbox) {
	t.Helper()
	fs := vfs.New()
	contacts := NewContacts(fs)
	calendar := NewCalendar(fs)
	fixed := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	inbox := NewInbox(fs, func() time.Time { return fixed })
	h := hpop.New(hpop.Config{Name: "pim-test"})
	for _, s := range []hpop.Service{contacts, calendar, inbox} {
		if err := h.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Stop(context.Background()) })
	return h, fs, contacts, calendar, inbox
}

func TestContactsCRUDProgrammatic(t *testing.T) {
	_, fs, contacts, _, _ := startPIM(t)
	id, err := contacts.Add(Contact{Name: "Ada Lovelace", Email: "ada@example.org"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := contacts.Get(id)
	if err != nil || got.Name != "Ada Lovelace" || got.ID != id {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	// Data persists inside the home's filesystem tree.
	if !fs.Exists(fmt.Sprintf("/pim/contacts/%06d.json", id)) {
		t.Error("contact not persisted in vfs")
	}
	if _, err := contacts.Add(Contact{}); err == nil {
		t.Error("nameless contact accepted")
	}
	if _, err := contacts.Get(999); err != ErrNotFound {
		t.Errorf("missing contact err = %v", err)
	}
}

func TestContactsSearch(t *testing.T) {
	_, _, contacts, _, _ := startPIM(t)
	contacts.Add(Contact{Name: "Bob Smith", Email: "bob@x.org"})
	contacts.Add(Contact{Name: "Alice Jones", Email: "alice@y.org"})
	contacts.Add(Contact{Name: "Bobby Tables", Email: "bt@z.org"})
	hits, err := contacts.Search("bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].Name != "Bob Smith" {
		t.Errorf("Search(bob) = %+v", hits)
	}
	all, _ := contacts.Search("")
	if len(all) != 3 || all[0].Name != "Alice Jones" {
		t.Errorf("Search(\"\") = %+v", all)
	}
}

func TestContactsHTTP(t *testing.T) {
	h, _, _, _, _ := startPIM(t)
	base := h.URL() + "/contacts/"
	// Create.
	resp, err := http.Post(base, "application/json",
		bytes.NewBufferString(`{"name":"Grace Hopper","email":"grace@navy.mil"}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID int `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == 0 {
		t.Fatalf("create status %d id %d", resp.StatusCode, created.ID)
	}
	// Read.
	resp, err = http.Get(fmt.Sprintf("%s%d", base, created.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got Contact
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.Name != "Grace Hopper" || got.ID != created.ID {
		t.Errorf("read = %+v", got)
	}
	// Replace.
	req, _ := http.NewRequest(http.MethodPut, fmt.Sprintf("%s%d", base, created.ID),
		bytes.NewBufferString(`{"name":"Rear Admiral Hopper"}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("replace status %d", resp.StatusCode)
	}
	// List.
	resp, err = http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	var list []Contact
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].Name != "Rear Admiral Hopper" {
		t.Errorf("list = %+v", list)
	}
	// Delete.
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s%d", base, created.ID), nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete status %d", resp.StatusCode)
	}
	// Gone.
	resp, _ = http.Get(fmt.Sprintf("%s%d", base, created.ID))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("post-delete read status %d", resp.StatusCode)
	}
}

func TestContactsHTTPValidation(t *testing.T) {
	h, _, _, _, _ := startPIM(t)
	base := h.URL() + "/contacts/"
	resp, err := http.Post(base, "application/json", bytes.NewBufferString(`{"email":"x@y"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless create status %d", resp.StatusCode)
	}
	resp, _ = http.Post(base, "application/json", bytes.NewBufferString(`{not json`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status %d", resp.StatusCode)
	}
	resp, _ = http.Get(base + "notanumber")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", resp.StatusCode)
	}
}

func TestCalendarRangeQueries(t *testing.T) {
	_, _, _, cal, _ := startPIM(t)
	day := func(d int, h int) time.Time {
		return time.Date(2026, 7, d, h, 0, 0, 0, time.UTC)
	}
	cal.Add(Event{Title: "standup", Start: day(6, 9), End: day(6, 10)})
	cal.Add(Event{Title: "dentist", Start: day(7, 14), End: day(7, 15)})
	cal.Add(Event{Title: "trip", Start: day(6, 18), End: day(8, 12)}) // spans days

	monday, err := cal.Range(day(6, 0), day(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(monday) != 2 || monday[0].Title != "standup" || monday[1].Title != "trip" {
		t.Errorf("monday = %+v", monday)
	}
	tuesday, _ := cal.Range(day(7, 0), day(8, 0))
	if len(tuesday) != 2 { // trip still ongoing + dentist
		t.Errorf("tuesday = %+v", tuesday)
	}
	empty, _ := cal.Range(day(20, 0), day(21, 0))
	if len(empty) != 0 {
		t.Errorf("empty range = %+v", empty)
	}
}

func TestCalendarValidation(t *testing.T) {
	_, _, _, cal, _ := startPIM(t)
	start := time.Now()
	if _, err := cal.Add(Event{Title: "", Start: start, End: start.Add(time.Hour)}); err == nil {
		t.Error("untitled event accepted")
	}
	if _, err := cal.Add(Event{Title: "x", Start: start, End: start}); err == nil {
		t.Error("zero-duration event accepted")
	}
}

func TestInboxDeliverAndRead(t *testing.T) {
	_, _, _, _, inbox := startPIM(t)
	id1, err := inbox.Deliver(Message{From: "mom@example.org", Subject: "dinner?"})
	if err != nil {
		t.Fatal(err)
	}
	inbox.Deliver(Message{From: "spam@example.net", Subject: "win big"})
	unread, err := inbox.Unread()
	if err != nil || len(unread) != 2 {
		t.Fatalf("unread = %d, %v", len(unread), err)
	}
	// Delivery timestamp injected from the clock.
	if unread[0].Received.IsZero() {
		t.Error("received time not stamped")
	}
	if err := inbox.MarkRead(id1); err != nil {
		t.Fatal(err)
	}
	unread, _ = inbox.Unread()
	if len(unread) != 1 || unread[0].From != "spam@example.net" {
		t.Errorf("after read = %+v", unread)
	}
	if err := inbox.MarkRead(999); err != ErrNotFound {
		t.Errorf("missing mark-read err = %v", err)
	}
	if _, err := inbox.Deliver(Message{}); err == nil {
		t.Error("fromless message accepted")
	}
}

func TestAllThreeServicesShareOneTree(t *testing.T) {
	_, fs, contacts, cal, inbox := startPIM(t)
	contacts.Add(Contact{Name: "n"})
	cal.Add(Event{Title: "t", Start: time.Now(), End: time.Now().Add(time.Hour)})
	inbox.Deliver(Message{From: "f"})
	entries, err := fs.List("/pim")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("/pim children = %+v", entries)
	}
}

func TestCalendarAndInboxHTTP(t *testing.T) {
	h, _, _, _, _ := startPIM(t)
	// Calendar create + list over HTTP.
	evBody := `{"title":"standup","start":"2026-07-06T09:00:00Z","end":"2026-07-06T09:15:00Z"}`
	resp, err := http.Post(h.URL()+"/calendar/", "application/json", bytes.NewBufferString(evBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("calendar create status %d", resp.StatusCode)
	}
	// Invalid event rejected.
	resp, _ = http.Post(h.URL()+"/calendar/", "application/json",
		bytes.NewBufferString(`{"title":"bad","start":"2026-07-06T09:00:00Z","end":"2026-07-06T09:00:00Z"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero-duration event status %d", resp.StatusCode)
	}
	// Inbox deliver + read over HTTP.
	resp, err = http.Post(h.URL()+"/inbox/", "application/json",
		bytes.NewBufferString(`{"from":"carol@example.org","subject":"hi"}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID int `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	resp, err = http.Get(fmt.Sprintf("%s/inbox/%d", h.URL(), created.ID))
	if err != nil {
		t.Fatal(err)
	}
	var msg Message
	json.NewDecoder(resp.Body).Decode(&msg)
	resp.Body.Close()
	if msg.From != "carol@example.org" || msg.Received.IsZero() {
		t.Errorf("message = %+v", msg)
	}
	// List endpoints return arrays.
	for _, ep := range []string{"/calendar/", "/inbox/", "/contacts/"} {
		resp, err := http.Get(h.URL() + ep)
		if err != nil {
			t.Fatal(err)
		}
		var raw []json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
			t.Errorf("%s list decode: %v", ep, err)
		}
		resp.Body.Close()
	}
	// Unsupported method on the collection.
	req, _ := http.NewRequest(http.MethodDelete, h.URL()+"/calendar/", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("collection DELETE status %d", resp.StatusCode)
	}
}
