package netsim

import (
	"testing"

	"hpop/internal/sim"
)

// BenchmarkReallocate100Flows measures the max-min recomputation cost at
// CCZ scale: 100 homes each with one active flow, plus churn.
func BenchmarkReallocate100Flows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.New()
		n := New(k)
		nb := BuildNeighborhood(n, nil, NeighborhoodConfig{Homes: 100})
		srv := nb.AttachServer("srv", 0, 0.02)
		for h := 0; h < 100; h++ {
			path, err := nb.DownPath(srv, h)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := n.StartFlow(path, 1e6); err != nil {
				b.Fatal(err)
			}
		}
		k.Run(0)
	}
}
