package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"hpop/internal/sim"
)

// twoNodeNet builds a single directed link a->b with the given capacity and
// delay, returning the net and the path.
func twoNodeNet(t *testing.T, capBps float64, delay sim.Time) (*Net, []*Link) {
	t.Helper()
	k := sim.New()
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.AddLink(a, b, capBps, delay)
	return n, []*Link{l}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowTransferTime(t *testing.T) {
	n, path := twoNodeNet(t, 8e6, 0.01) // 8 Mbps, 10 ms
	var done *Flow
	f, err := n.StartFlow(path, 1e6, WithOnDone(func(f *Flow) { done = f })) // 1 MB
	if err != nil {
		t.Fatal(err)
	}
	n.Kernel().Run(0)
	if done != f || !f.Finished() {
		t.Fatal("flow did not finish")
	}
	// 1 MB over 8 Mbps = 1 s serialization + 10 ms propagation.
	if !almost(float64(f.Duration()), 1.01, 1e-9) {
		t.Errorf("duration = %v, want 1.01s", f.Duration())
	}
}

func TestTwoFlowsFairShare(t *testing.T) {
	n, path := twoNodeNet(t, 8e6, 0)
	f1, _ := n.StartFlow(path, 1e6)
	f2, _ := n.StartFlow(path, 1e6)
	if !almost(f1.Rate(), 4e6, 1) || !almost(f2.Rate(), 4e6, 1) {
		t.Errorf("rates = %v, %v; want 4e6 each", f1.Rate(), f2.Rate())
	}
	n.Kernel().Run(0)
	// Both 1 MB at 4 Mbps: 2 s each.
	if !almost(float64(f1.Duration()), 2, 1e-9) || !almost(float64(f2.Duration()), 2, 1e-9) {
		t.Errorf("durations = %v, %v; want 2s", f1.Duration(), f2.Duration())
	}
}

func TestFlowCompletionSpeedsUpRemaining(t *testing.T) {
	n, path := twoNodeNet(t, 8e6, 0)
	f1, _ := n.StartFlow(path, 1e6) // shares 4 Mbps until f2 finishes
	f2, _ := n.StartFlow(path, 0.5e6)
	n.Kernel().Run(0)
	// f2: 0.5 MB at 4 Mbps = 1 s. f1: 0.5 MB in first second, then the
	// remaining 0.5 MB at full 8 Mbps = 0.5 s. Total 1.5 s.
	if !almost(float64(f2.Duration()), 1.0, 1e-9) {
		t.Errorf("f2 duration = %v, want 1s", f2.Duration())
	}
	if !almost(float64(f1.Duration()), 1.5, 1e-9) {
		t.Errorf("f1 duration = %v, want 1.5s", f1.Duration())
	}
}

func TestRateCap(t *testing.T) {
	n, path := twoNodeNet(t, 8e6, 0)
	capped, _ := n.StartFlow(path, 1e6, WithRateCap(1e6))
	open, _ := n.StartFlow(path, 1e6)
	// Capped flow gets its 1 Mbps; open flow gets the remaining 7 Mbps
	// (max-min with demand limits).
	if !almost(capped.Rate(), 1e6, 1) {
		t.Errorf("capped rate = %v, want 1e6", capped.Rate())
	}
	if !almost(open.Rate(), 7e6, 1) {
		t.Errorf("open rate = %v, want 7e6", open.Rate())
	}
	n.Kernel().Run(0)
}

func TestSetRateCapMidTransfer(t *testing.T) {
	n, path := twoNodeNet(t, 8e6, 0)
	f, _ := n.StartFlow(path, 2e6)
	n.Kernel().After(1, func() {
		if err := n.SetRateCap(f, 4e6); err != nil {
			t.Errorf("SetRateCap: %v", err)
		}
	})
	n.Kernel().Run(0)
	// First second at 8 Mbps moves 1 MB; remaining 1 MB at 4 Mbps takes 2 s.
	if !almost(float64(f.Duration()), 3, 1e-9) {
		t.Errorf("duration = %v, want 3s", f.Duration())
	}
}

func TestStopFlow(t *testing.T) {
	n, path := twoNodeNet(t, 8e6, 0)
	f1, _ := n.StartFlow(path, 8e6) // would take 8 s alone
	f2, _ := n.StartFlow(path, 8e6)
	n.Kernel().After(2, func() {
		if err := n.StopFlow(f1); err != nil {
			t.Errorf("StopFlow: %v", err)
		}
	})
	n.Kernel().Run(0)
	if !f1.Stopped() || f1.Finished() {
		t.Error("f1 should be stopped, not finished")
	}
	// f2: 2 s at 4 Mbps (1 MB), then 7 MB at 8 Mbps (7 s) => 9 s.
	if !almost(float64(f2.Duration()), 9, 1e-9) {
		t.Errorf("f2 duration = %v, want 9s", f2.Duration())
	}
	if err := n.StopFlow(f1); err != ErrFlowFinished {
		t.Errorf("double stop = %v, want ErrFlowFinished", err)
	}
}

func TestMultiHopBottleneck(t *testing.T) {
	k := sim.New()
	n := New(k)
	a, b, c := n.AddNode("a"), n.AddNode("b"), n.AddNode("c")
	l1 := n.AddLink(a, b, 10e6, 0.001)
	l2 := n.AddLink(b, c, 2e6, 0.001)
	f, err := n.StartFlow([]*Link{l1, l2}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Rate(), 2e6, 1) {
		t.Errorf("rate = %v, want bottleneck 2e6", f.Rate())
	}
	k.Run(0)
	// 1 MB at 2 Mbps = 4 s + 2 ms propagation.
	if !almost(float64(f.Duration()), 4.002, 1e-9) {
		t.Errorf("duration = %v, want 4.002", f.Duration())
	}
}

func TestMaxMinAcrossLinks(t *testing.T) {
	// Classic max-min example: flow X crosses both links, flows Y and Z one
	// each. Link1 cap 10, link2 cap 4 (Mbps). Max-min: X and Z split link2
	// (2 each); Y gets link1 leftover (8).
	k := sim.New()
	n := New(k)
	a, b, c := n.AddNode("a"), n.AddNode("b"), n.AddNode("c")
	l1 := n.AddLink(a, b, 10e6, 0)
	l2 := n.AddLink(b, c, 4e6, 0)
	x, _ := n.StartFlow([]*Link{l1, l2}, 1e9)
	y, _ := n.StartFlow([]*Link{l1}, 1e9)
	z, _ := n.StartFlow([]*Link{l2}, 1e9)
	if !almost(x.Rate(), 2e6, 1) {
		t.Errorf("x rate = %v, want 2e6", x.Rate())
	}
	if !almost(y.Rate(), 8e6, 1) {
		t.Errorf("y rate = %v, want 8e6", y.Rate())
	}
	if !almost(z.Rate(), 2e6, 1) {
		t.Errorf("z rate = %v, want 2e6", z.Rate())
	}
	n.StopFlow(x)
	n.StopFlow(y)
	n.StopFlow(z)
}

func TestRoute(t *testing.T) {
	k := sim.New()
	n := New(k)
	a, b, c, d := n.AddNode("a"), n.AddNode("b"), n.AddNode("c"), n.AddNode("d")
	n.AddDuplexLink(a, b, 1e6, 0)
	n.AddDuplexLink(b, c, 1e6, 0)
	n.AddDuplexLink(c, d, 1e6, 0)
	n.AddDuplexLink(a, d, 1e6, 0) // shortcut
	path, err := n.Route(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 {
		t.Errorf("Route a->d len = %d, want 1 (shortcut)", len(path))
	}
	path, err = n.Route(b, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("Route b->d len = %d, want 2", len(path))
	}
	if _, err := n.Route(a, a); err != ErrEmptyPath {
		t.Errorf("Route a->a err = %v, want ErrEmptyPath", err)
	}
	iso := n.AddNode("island")
	if _, err := n.Route(a, iso); err != ErrNoRoute {
		t.Errorf("Route to island err = %v, want ErrNoRoute", err)
	}
}

func TestStartFlowErrors(t *testing.T) {
	k := sim.New()
	n := New(k)
	a, b, c := n.AddNode("a"), n.AddNode("b"), n.AddNode("c")
	l1 := n.AddLink(a, b, 1e6, 0)
	l2 := n.AddLink(a, c, 1e6, 0) // does not chain after l1
	if _, err := n.StartFlow(nil, 100); err != ErrEmptyPath {
		t.Errorf("empty path err = %v", err)
	}
	if _, err := n.StartFlow([]*Link{l1, l2}, 100); err != ErrBrokenPath {
		t.Errorf("broken path err = %v", err)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	n, path := twoNodeNet(t, 8e6, 0)
	n.StartFlow(path, 1e6) // 1 s at full rate
	n.Kernel().Run(2)      // then 1 s idle
	l := path[0]
	if got := n.BitsCarried(l); !almost(got, 8e6, 1) {
		t.Errorf("BitsCarried = %v, want 8e6", got)
	}
	if got := n.AvgUtilization(l); !almost(got, 0.5, 1e-6) {
		t.Errorf("AvgUtilization = %v, want 0.5", got)
	}
	if got := l.PeakBps(); !almost(got, 8e6, 1) {
		t.Errorf("PeakBps = %v, want 8e6", got)
	}
}

func TestNeighborhoodTopology(t *testing.T) {
	k := sim.New()
	n := New(k)
	nb := BuildNeighborhood(n, nil, NeighborhoodConfig{Homes: 10})
	if len(nb.Homes) != 10 {
		t.Fatalf("homes = %d", len(nb.Homes))
	}
	srv := nb.AttachServer("srv", 0, 0.025)

	// Server->home path crosses the aggregation downlink.
	path, err := nb.DownPath(srv, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range path {
		if l == nb.AggDown {
			found = true
		}
	}
	if !found {
		t.Error("server->home path missed aggregation downlink")
	}

	// Lateral path must avoid the aggregation links entirely.
	lat, err := nb.LateralPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lat {
		if l == nb.AggUp || l == nb.AggDown {
			t.Error("lateral path crossed aggregation link")
		}
	}
	if len(lat) != 2 {
		t.Errorf("lateral path len = %d, want 2", len(lat))
	}
}

func TestNeighborhoodLateralBandwidth(t *testing.T) {
	// Two homes exchanging data laterally get full access capacity even
	// while the aggregation link is saturated — the paper's "lateral
	// bandwidth" property.
	k := sim.New()
	n := New(k)
	nb := BuildNeighborhood(n, nil, NeighborhoodConfig{Homes: 4, HomeBps: 1 * Gbps, AggBps: 2 * Gbps})
	srv := nb.AttachServer("srv", 0, 0.02)
	// Saturate aggregation: 4 homes pulling big downloads (2 Gbps / 4 = 500M each).
	for i := 0; i < 4; i++ {
		p, _ := nb.DownPath(srv, i)
		n.StartFlow(p, 1e12)
	}
	lat, _ := nb.LateralPath(0, 1)
	f, _ := n.StartFlow(lat, 1e9)
	// Lateral flow shares home0's uplink (idle) and home1's downlink
	// (occupied by a 500 Mbps download). Max-min on the 1 Gbps downlink
	// gives each 500 Mbps.
	if f.Rate() < 400e6 {
		t.Errorf("lateral rate = %v, want ~500 Mbps despite saturated aggregation", f.Rate())
	}
}

func TestBottleneckShiftShape(t *testing.T) {
	// With few active homes the access link binds (1 Gbps per flow); with
	// many, the 10 Gbps aggregation binds (10G/N per flow).
	perFlow := func(active int) float64 {
		k := sim.New()
		n := New(k)
		nb := BuildNeighborhood(n, nil, NeighborhoodConfig{Homes: active})
		srv := nb.AttachServer("srv", 0, 0.02)
		var rates []float64
		for i := 0; i < active; i++ {
			p, _ := nb.DownPath(srv, i)
			f, _ := n.StartFlow(p, 1e12)
			rates = append(rates, 0)
			_ = f
		}
		// read allocated rates
		var sum float64
		for f := range n.flows {
			sum += f.Rate()
		}
		return sum / float64(active)
	}
	if r := perFlow(5); !almost(r, 1*Gbps, 1e3) {
		t.Errorf("5 homes: per-flow = %v, want 1 Gbps (access-limited)", r)
	}
	if r := perFlow(50); !almost(r, 10*Gbps/50, 1e3) {
		t.Errorf("50 homes: per-flow = %v, want 200 Mbps (aggregation-limited)", r)
	}
}

func TestSampler(t *testing.T) {
	k := sim.New()
	n := New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	l := n.AddLink(a, b, 8e6, 0)
	n.StartFlow([]*Link{l}, 2e6) // 2 s at 8 Mbps
	s := Sample(k, 0.5, 4, func() float64 {
		var sum float64
		for f := range l.active {
			sum += f.Rate()
		}
		return sum
	})
	k.Run(4)
	if len(s.Times) != 8 {
		t.Fatalf("samples = %d, want 8", len(s.Times))
	}
	if got := s.FractionAbove(1e6); !almost(got, 0.5, 0.13) {
		t.Errorf("FractionAbove = %v, want ~0.5 (busy half the window)", got)
	}
	if s.Max() != 8e6 {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Mean() <= 0 || s.Mean() >= 8e6 {
		t.Errorf("Mean = %v out of range", s.Mean())
	}
}

// Property: total allocated rate on any link never exceeds capacity, and
// every flow eventually finishes, over random small scenarios.
func TestAllocationCapacityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		k := sim.New()
		n := New(k)
		nodes := make([]*Node, 5)
		for i := range nodes {
			nodes[i] = n.AddNode("n")
		}
		for i := 0; i < 4; i++ {
			n.AddDuplexLink(nodes[i], nodes[i+1], float64(1+rng.Intn(10))*1e6, 0.001)
		}
		var flows []*Flow
		for i := 0; i < 8; i++ {
			src := rng.Intn(5)
			dst := rng.Intn(5)
			if src == dst {
				continue
			}
			fl, err := n.StartFlowBetween(nodes[src], nodes[dst], float64(1+rng.Intn(100))*1e4)
			if err != nil {
				return false
			}
			flows = append(flows, fl)
		}
		// Capacity invariant at the initial allocation.
		for _, l := range n.links {
			var sum float64
			for fl := range l.active {
				sum += fl.rate
			}
			if sum > l.capBps*(1+1e-9) {
				return false
			}
		}
		k.Run(0)
		for _, fl := range flows {
			if !fl.Finished() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: conservation — bits carried on a single-link path equal 8x the
// flow bytes once finished.
func TestConservationProperty(t *testing.T) {
	f := func(sizeRaw uint16) bool {
		size := float64(sizeRaw)*100 + 1000
		k := sim.New()
		n := New(k)
		a, b := n.AddNode("a"), n.AddNode("b")
		l := n.AddLink(a, b, 8e6, 0)
		n.StartFlow([]*Link{l}, size)
		k.Run(0)
		return math.Abs(n.BitsCarried(l)-size*8) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConnectivityHierarchy(t *testing.T) {
	// §II: "A host has access to its local devices ... at 3-4Gbps, to its
	// peers within the FTTH community at 1Gbps, and to the rest of the
	// Internet through the shared aggregation link."
	k := sim.New()
	n := New(k)
	nb := BuildNeighborhood(n, nil, NeighborhoodConfig{Homes: 4})
	dev := nb.AttachDevice(0, "nas", 0)

	// Tier 1: device <-> home at 3.5 Gbps.
	p, err := n.Route(dev, nb.Homes[0])
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := n.StartFlow(p, 1e12)
	if !almost(f1.Rate(), 3.5*Gbps, 1e3) {
		t.Errorf("device tier rate = %v", f1.Rate())
	}
	n.StopFlow(f1)

	// Tier 2: home <-> neighbor at 1 Gbps.
	lat, _ := nb.LateralPath(0, 1)
	f2, _ := n.StartFlow(lat, 1e12)
	if !almost(f2.Rate(), 1*Gbps, 1e3) {
		t.Errorf("neighborhood tier rate = %v", f2.Rate())
	}
	n.StopFlow(f2)
}

func TestCityCrossNeighborhood(t *testing.T) {
	k := sim.New()
	n := New(k)
	city := BuildCity(n, 3, NeighborhoodConfig{Homes: 5, AggBps: 2 * Gbps})
	if len(city.Neighborhoods) != 3 {
		t.Fatalf("neighborhoods = %d", len(city.Neighborhoods))
	}
	// Cross-neighborhood path exists and crosses both aggregation links.
	path, err := city.CrossPath(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sawUp, sawDown := false, false
	for _, l := range path {
		if l == city.Neighborhoods[0].AggUp {
			sawUp = true
		}
		if l == city.Neighborhoods[2].AggDown {
			sawDown = true
		}
	}
	if !sawUp || !sawDown {
		t.Error("cross path missed aggregation links")
	}
	// A single cross-neighborhood flow is access-limited (1 Gbps), but
	// many flows share the 2 Gbps aggregates.
	f, _ := n.StartFlow(path, 1e12)
	if !almost(f.Rate(), 1*Gbps, 1e3) {
		t.Errorf("single cross flow rate = %v", f.Rate())
	}
	var flows []*Flow
	for h := 0; h < 5; h++ {
		p, err := city.CrossPath(0, h, 1, h)
		if err != nil {
			t.Fatal(err)
		}
		fl, _ := n.StartFlow(p, 1e12)
		flows = append(flows, fl)
	}
	var sum float64
	for _, fl := range flows {
		sum += fl.Rate()
	}
	// nb0's 2 Gbps uplink now carries f (to nb2) plus 5 flows (to nb1):
	// total bounded by the aggregate.
	if sum+f.Rate() > 2*Gbps*1.001 {
		t.Errorf("cross-neighborhood flows exceed shared aggregate: %v", sum+f.Rate())
	}
}
