package netsim

import (
	"fmt"

	"hpop/internal/sim"
)

// Standard capacities used throughout the experiments, in bits per second.
const (
	Kbps = 1e3
	Mbps = 1e6
	Gbps = 1e9

	// DefaultHomeBps is the per-home FTTH access capacity (CCZ: 1 Gbps,
	// bi-directional).
	DefaultHomeBps = 1 * Gbps
	// DefaultAggBps is the shared neighborhood aggregation uplink (CCZ:
	// ~100 homes onto 10 Gbps).
	DefaultAggBps = 10 * Gbps
	// DefaultCoreBps approximates an uncongested core.
	DefaultCoreBps = 100 * Gbps
)

// Neighborhood models a CCZ-style FTTH neighborhood: each home has a duplex
// 1 Gbps link to a neighborhood switch; the switch shares one duplex 10 Gbps
// aggregation link toward the provider core; servers hang off the core.
//
// Lateral (home-to-home) traffic crosses only the two access links and the
// switch, never the aggregation uplink — the "plentiful lateral bandwidth"
// property from §II of the paper.
type Neighborhood struct {
	Net    *Net
	Switch *Node
	Core   *Node
	Homes  []*Node

	// AggUp and AggDown are the shared aggregation links (switch->core and
	// core->switch) whose congestion the bottleneck-shift experiment studies.
	AggUp   *Link
	AggDown *Link

	// HomeUp[i] / HomeDown[i] are home i's access links.
	HomeUp   []*Link
	HomeDown []*Link
}

// NeighborhoodConfig parameterizes BuildNeighborhood.
type NeighborhoodConfig struct {
	Homes       int     // number of houses (CCZ: ~100)
	HomeBps     float64 // per-home duplex capacity (default 1 Gbps)
	AggBps      float64 // shared aggregation capacity (default 10 Gbps)
	AccessDelay sim.Time
	AggDelay    sim.Time
	Name        string // label prefix for nodes
}

func (c *NeighborhoodConfig) applyDefaults() {
	if c.Homes <= 0 {
		c.Homes = 100
	}
	if c.HomeBps <= 0 {
		c.HomeBps = DefaultHomeBps
	}
	if c.AggBps <= 0 {
		c.AggBps = DefaultAggBps
	}
	if c.AccessDelay <= 0 {
		c.AccessDelay = sim.Time(0.0005) // 0.5 ms fiber access
	}
	if c.AggDelay <= 0 {
		c.AggDelay = sim.Time(0.002) // 2 ms to the provider core
	}
	if c.Name == "" {
		c.Name = "ccz"
	}
}

// BuildNeighborhood constructs the topology on an existing Net, attached to
// the given core node (created if nil).
func BuildNeighborhood(n *Net, core *Node, cfg NeighborhoodConfig) *Neighborhood {
	cfg.applyDefaults()
	if core == nil {
		core = n.AddNode(cfg.Name + "-core")
	}
	sw := n.AddNode(cfg.Name + "-switch")
	up, down := n.AddDuplexLink(sw, core, cfg.AggBps, cfg.AggDelay)
	nb := &Neighborhood{
		Net:     n,
		Switch:  sw,
		Core:    core,
		AggUp:   up,
		AggDown: down,
	}
	for i := 0; i < cfg.Homes; i++ {
		h := n.AddNode(fmt.Sprintf("%s-home%03d", cfg.Name, i))
		hu, hd := n.AddDuplexLink(h, sw, cfg.HomeBps, cfg.AccessDelay)
		nb.Homes = append(nb.Homes, h)
		nb.HomeUp = append(nb.HomeUp, hu)
		nb.HomeDown = append(nb.HomeDown, hd)
	}
	return nb
}

// AttachServer adds a server node hanging off the core over a high-capacity
// duplex link, with the given one-way delay (which models WAN distance).
func (nb *Neighborhood) AttachServer(name string, capBps float64, delay sim.Time) *Node {
	if capBps <= 0 {
		capBps = DefaultCoreBps
	}
	s := nb.Net.AddNode(name)
	nb.Net.AddDuplexLink(s, nb.Core, capBps, delay)
	return s
}

// DownPath returns the link path server/core-side node -> home i, routed.
func (nb *Neighborhood) DownPath(from *Node, home int) ([]*Link, error) {
	return nb.Net.Route(from, nb.Homes[home])
}

// UpPath returns the link path home i -> core-side node.
func (nb *Neighborhood) UpPath(home int, to *Node) ([]*Link, error) {
	return nb.Net.Route(nb.Homes[home], to)
}

// LateralPath returns the home-to-home path (access links only).
func (nb *Neighborhood) LateralPath(a, b int) ([]*Link, error) {
	return nb.Net.Route(nb.Homes[a], nb.Homes[b])
}

// DefaultDeviceBps is in-home device connectivity ("local devices connected
// with, e.g., Firewire S3200 or USB 3 at 3-4Gbps" — §II).
const DefaultDeviceBps = 3.5 * Gbps

// AttachDevice adds an in-home device (NAS, desktop) hanging off home i at
// local-interconnect speed — the top tier of §II's connectivity hierarchy.
func (nb *Neighborhood) AttachDevice(home int, name string, capBps float64) *Node {
	if capBps <= 0 {
		capBps = DefaultDeviceBps
	}
	d := nb.Net.AddNode(name)
	nb.Net.AddDuplexLink(d, nb.Homes[home], capBps, sim.Time(0.00005))
	return d
}

// City is a multi-neighborhood hierarchy: several FTTH neighborhoods whose
// aggregation links meet at a shared metro core — "Considering multiple
// such FTTH neighborhoods of the future, this creates a hierarchy of
// connectivity" (§II).
type City struct {
	Net           *Net
	Core          *Node
	Neighborhoods []*Neighborhood
}

// BuildCity constructs `count` neighborhoods under one metro core. Each
// neighborhood gets the same per-neighborhood config.
func BuildCity(n *Net, count int, cfg NeighborhoodConfig) *City {
	core := n.AddNode("metro-core")
	c := &City{Net: n, Core: core}
	for i := 0; i < count; i++ {
		nbCfg := cfg
		nbCfg.Name = fmt.Sprintf("nb%02d", i)
		c.Neighborhoods = append(c.Neighborhoods, BuildNeighborhood(n, core, nbCfg))
	}
	return c
}

// CrossPath routes from home a in neighborhood i to home b in neighborhood
// j — a path crossing both aggregation links.
func (c *City) CrossPath(i, a, j, b int) ([]*Link, error) {
	return c.Net.Route(c.Neighborhoods[i].Homes[a], c.Neighborhoods[j].Homes[b])
}

// Sampler periodically records a metric during a simulation run.
type Sampler struct {
	Times  []sim.Time
	Values []float64
}

// Sample installs a recurring sampler on the kernel: every interval it calls
// metric() and appends the result, until the horizon (0 = forever while
// events remain — the sampler itself keeps the queue non-empty, so a horizon
// is required in that case and enforced here).
func Sample(k *sim.Kernel, interval, horizon sim.Time, metric func() float64) *Sampler {
	if horizon <= 0 {
		panic("netsim: Sample requires a positive horizon")
	}
	s := &Sampler{}
	var tick func()
	tick = func() {
		s.Times = append(s.Times, k.Now())
		s.Values = append(s.Values, metric())
		if k.Now()+interval <= horizon {
			k.After(interval, tick)
		}
	}
	k.After(interval, tick)
	return s
}

// FractionAbove returns the fraction of samples strictly greater than x.
func (s *Sampler) FractionAbove(x float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	c := 0
	for _, v := range s.Values {
		if v > x {
			c++
		}
	}
	return float64(c) / float64(len(s.Values))
}

// Max returns the largest sample (0 for an empty sampler).
func (s *Sampler) Max() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the samples (0 for an empty sampler).
func (s *Sampler) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}
