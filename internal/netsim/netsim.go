// Package netsim is a discrete-event, fluid-flow network simulator.
//
// It models a network as directed links with fixed capacity and propagation
// delay, and transfers as fluid flows that share link capacity max-min
// fairly. Whenever the flow population changes, the simulator recomputes the
// global max-min fair allocation (progressive filling, honoring per-flow rate
// caps) and reschedules flow-completion events.
//
// The model deliberately abstracts packets away: the experiments built on it
// (CCZ utilization, bottleneck shift, NoCDN/detour/cooperative-cache transfer
// times) are bandwidth-sharing and transfer-time questions, for which a fluid
// model is the standard substrate. Protocol dynamics that do depend on
// packets and RTTs (slow start, MPTCP scheduling) live in internal/tcpsim.
package netsim

import (
	"errors"
	"fmt"
	"math"

	"hpop/internal/sim"
)

// Common errors returned by the simulator.
var (
	ErrNoRoute      = errors.New("netsim: no route between nodes")
	ErrEmptyPath    = errors.New("netsim: empty path")
	ErrBrokenPath   = errors.New("netsim: links do not form a connected path")
	ErrFlowFinished = errors.New("netsim: flow already finished")
)

// Node is a network endpoint or switch.
type Node struct {
	id   int
	name string
	out  []*Link
}

// Name returns the node's label.
func (n *Node) Name() string { return n.name }

// String implements fmt.Stringer.
func (n *Node) String() string { return n.name }

// Link is a directed link with a capacity in bits per second and a one-way
// propagation delay.
type Link struct {
	id       int
	from, to *Node
	capBps   float64
	delay    sim.Time

	active map[*Flow]struct{}

	// utilization accounting
	lastUpdate  sim.Time
	bitsCarried float64 // integral of allocated rate over time
	peakBps     float64
}

// From returns the transmitting endpoint.
func (l *Link) From() *Node { return l.from }

// To returns the receiving endpoint.
func (l *Link) To() *Node { return l.to }

// Capacity returns the link capacity in bits per second.
func (l *Link) Capacity() float64 { return l.capBps }

// Delay returns the one-way propagation delay.
func (l *Link) Delay() sim.Time { return l.delay }

// ActiveFlows returns the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int { return len(l.active) }

// PeakBps returns the highest aggregate allocated rate observed on the link.
func (l *Link) PeakBps() float64 { return l.peakBps }

// String implements fmt.Stringer.
func (l *Link) String() string {
	return fmt.Sprintf("%s->%s@%.0fbps", l.from.name, l.to.name, l.capBps)
}

// Flow is a fluid transfer along a fixed path of links.
type Flow struct {
	id         int
	path       []*Link
	bytesTotal float64
	bytesLeft  float64
	rateCap    float64 // bits/sec demand limit; 0 = unlimited
	rate       float64 // current allocated bits/sec
	start      sim.Time
	finish     sim.Time
	finished   bool
	stopped    bool
	onDone     func(*Flow)
	completion *sim.Event
}

// Rate returns the currently allocated rate in bits per second.
func (f *Flow) Rate() float64 { return f.rate }

// BytesLeft returns the bytes still to transfer (as of the last allocation
// recompute; intra-interval progress is accounted lazily).
func (f *Flow) BytesLeft() float64 { return f.bytesLeft }

// BytesTotal returns the flow size in bytes.
func (f *Flow) BytesTotal() float64 { return f.bytesTotal }

// Finished reports whether the flow completed (all bytes delivered).
func (f *Flow) Finished() bool { return f.finished }

// Stopped reports whether the flow was aborted before completion.
func (f *Flow) Stopped() bool { return f.stopped }

// Start returns the time the flow was started.
func (f *Flow) Start() sim.Time { return f.start }

// FinishTime returns the completion instant. Valid only once Finished.
func (f *Flow) FinishTime() sim.Time { return f.finish }

// Duration returns completion time minus start time (propagation delay
// included). Valid only once Finished.
func (f *Flow) Duration() sim.Time { return f.finish - f.start }

// PathDelay returns the sum of one-way propagation delays along the path.
func (f *Flow) PathDelay() sim.Time {
	var d sim.Time
	for _, l := range f.path {
		d += l.delay
	}
	return d
}

// Net is the simulated network. All methods must be called from the owning
// goroutine / from within simulation events; Net is not safe for concurrent
// use (the simulation kernel is single-threaded by design).
type Net struct {
	kernel *sim.Kernel
	nodes  []*Node
	links  []*Link
	flows  map[*Flow]struct{}

	nextFlowID int
	lastSync   sim.Time
}

// New creates an empty network bound to the given simulation kernel.
func New(k *sim.Kernel) *Net {
	return &Net{kernel: k, flows: make(map[*Flow]struct{})}
}

// Kernel returns the simulation kernel driving this network.
func (n *Net) Kernel() *sim.Kernel { return n.kernel }

// AddNode creates a named node.
func (n *Net) AddNode(name string) *Node {
	node := &Node{id: len(n.nodes), name: name}
	n.nodes = append(n.nodes, node)
	return node
}

// AddLink creates a directed link from -> to.
func (n *Net) AddLink(from, to *Node, capBps float64, delay sim.Time) *Link {
	if capBps <= 0 {
		panic("netsim: non-positive link capacity")
	}
	l := &Link{
		id:     len(n.links),
		from:   from,
		to:     to,
		capBps: capBps,
		delay:  delay,
		active: make(map[*Flow]struct{}),
	}
	n.links = append(n.links, l)
	from.out = append(from.out, l)
	return l
}

// AddDuplexLink creates a pair of directed links a->b and b->a with the same
// capacity and delay, returning them in that order.
func (n *Net) AddDuplexLink(a, b *Node, capBps float64, delay sim.Time) (*Link, *Link) {
	return n.AddLink(a, b, capBps, delay), n.AddLink(b, a, capBps, delay)
}

// Route returns a minimum-hop path of links from src to dst (BFS). Ties are
// broken by insertion order, which keeps routing deterministic.
func (n *Net) Route(src, dst *Node) ([]*Link, error) {
	if src == dst {
		return nil, ErrEmptyPath
	}
	prev := make(map[*Node]*Link, len(n.nodes))
	visited := make(map[*Node]bool, len(n.nodes))
	visited[src] = true
	queue := []*Node{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range cur.out {
			if visited[l.to] {
				continue
			}
			visited[l.to] = true
			prev[l.to] = l
			if l.to == dst {
				// reconstruct
				var rev []*Link
				for at := dst; at != src; {
					link := prev[at]
					rev = append(rev, link)
					at = link.from
				}
				path := make([]*Link, len(rev))
				for i := range rev {
					path[i] = rev[len(rev)-1-i]
				}
				return path, nil
			}
			queue = append(queue, l.to)
		}
	}
	return nil, ErrNoRoute
}

// FlowOption customizes a flow at start time.
type FlowOption func(*Flow)

// WithRateCap limits a flow's rate to capBps bits per second (an
// application-limited source). Non-positive means unlimited.
func WithRateCap(capBps float64) FlowOption {
	return func(f *Flow) {
		if capBps > 0 {
			f.rateCap = capBps
		}
	}
}

// WithOnDone registers a completion callback, invoked from within the
// simulation when the last byte is delivered.
func WithOnDone(fn func(*Flow)) FlowOption {
	return func(f *Flow) { f.onDone = fn }
}

// StartFlow begins transferring bytes along the explicit link path. The
// path must be non-empty and connected.
func (n *Net) StartFlow(path []*Link, bytes float64, opts ...FlowOption) (*Flow, error) {
	if len(path) == 0 {
		return nil, ErrEmptyPath
	}
	for i := 1; i < len(path); i++ {
		if path[i].from != path[i-1].to {
			return nil, ErrBrokenPath
		}
	}
	if bytes <= 0 {
		bytes = 1 // degenerate but well-defined: delivers "immediately"
	}
	f := &Flow{
		id:         n.nextFlowID,
		path:       path,
		bytesTotal: bytes,
		bytesLeft:  bytes,
		start:      n.kernel.Now(),
	}
	n.nextFlowID++
	for _, o := range opts {
		o(f)
	}
	n.syncProgress()
	n.flows[f] = struct{}{}
	for _, l := range path {
		l.active[f] = struct{}{}
	}
	n.reallocate()
	return f, nil
}

// StartFlowBetween routes from src to dst and starts a flow on that path.
func (n *Net) StartFlowBetween(src, dst *Node, bytes float64, opts ...FlowOption) (*Flow, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return nil, err
	}
	return n.StartFlow(path, bytes, opts...)
}

// StopFlow aborts an in-progress flow. Remaining bytes are discarded.
func (n *Net) StopFlow(f *Flow) error {
	if f.finished || f.stopped {
		return ErrFlowFinished
	}
	n.syncProgress()
	f.stopped = true
	n.removeFlow(f)
	n.reallocate()
	return nil
}

// SetRateCap changes a flow's demand limit mid-transfer.
func (n *Net) SetRateCap(f *Flow, capBps float64) error {
	if f.finished || f.stopped {
		return ErrFlowFinished
	}
	n.syncProgress()
	if capBps <= 0 {
		f.rateCap = 0
	} else {
		f.rateCap = capBps
	}
	n.reallocate()
	return nil
}

// ActiveFlows returns the number of in-progress flows.
func (n *Net) ActiveFlows() int { return len(n.flows) }

// syncProgress charges elapsed time since the last allocation change against
// every active flow's remaining bytes and every link's carried-bits integral.
func (n *Net) syncProgress() {
	now := n.kernel.Now()
	dt := float64(now - n.lastSync)
	if dt > 0 {
		for f := range n.flows {
			f.bytesLeft -= f.rate * dt / 8
			if f.bytesLeft < 0 {
				f.bytesLeft = 0
			}
		}
		for _, l := range n.links {
			var sum float64
			for f := range l.active {
				sum += f.rate
			}
			l.bitsCarried += sum * dt
		}
	}
	n.lastSync = now
}

func (n *Net) removeFlow(f *Flow) {
	delete(n.flows, f)
	for _, l := range f.path {
		delete(l.active, f)
	}
	if f.completion != nil {
		n.kernel.Cancel(f.completion)
		f.completion = nil
	}
}

// reallocate computes the global max-min fair allocation via progressive
// filling and reschedules each flow's completion event.
func (n *Net) reallocate() {
	if len(n.flows) == 0 {
		return
	}
	type linkState struct {
		remaining float64
		count     int
	}
	states := make(map[*Link]*linkState)
	unfrozen := make(map[*Flow]struct{}, len(n.flows))
	for f := range n.flows {
		unfrozen[f] = struct{}{}
		f.rate = 0
	}
	for _, l := range n.links {
		if len(l.active) > 0 {
			states[l] = &linkState{remaining: l.capBps, count: len(l.active)}
		}
	}

	freeze := func(f *Flow, rate float64) {
		f.rate = rate
		delete(unfrozen, f)
		for _, l := range f.path {
			st := states[l]
			st.remaining -= rate
			if st.remaining < 0 {
				st.remaining = 0
			}
			st.count--
		}
	}

	for len(unfrozen) > 0 {
		// Find the binding constraint: the smallest of (a) any link's fair
		// share among its unfrozen flows and (b) any unfrozen flow's cap.
		minShare := math.Inf(1)
		for l, st := range states {
			if st.count <= 0 {
				continue
			}
			// Only links with unfrozen flows constrain.
			hasUnfrozen := false
			for f := range l.active {
				if _, ok := unfrozen[f]; ok {
					hasUnfrozen = true
					break
				}
			}
			if !hasUnfrozen {
				continue
			}
			if share := st.remaining / float64(st.count); share < minShare {
				minShare = share
			}
		}
		// Flows whose demand cap is below the current water level freeze at
		// their cap first.
		var cappedFlow *Flow
		minCap := minShare
		for f := range unfrozen {
			if f.rateCap > 0 && f.rateCap < minCap {
				minCap = f.rateCap
				cappedFlow = f
			}
		}
		if cappedFlow != nil {
			freeze(cappedFlow, cappedFlow.rateCap)
			continue
		}
		if math.IsInf(minShare, 1) {
			// No constraining link (shouldn't happen: every flow crosses at
			// least one link); freeze everything at link capacity share 0.
			for f := range unfrozen {
				freeze(f, 0)
			}
			break
		}
		// Freeze every unfrozen flow crossing a saturated-at-minShare link.
		frozeAny := false
		for l, st := range states {
			if st.count <= 0 {
				continue
			}
			if st.remaining/float64(st.count) <= minShare*(1+1e-12) {
				for f := range l.active {
					if _, ok := unfrozen[f]; ok {
						freeze(f, minShare)
						frozeAny = true
					}
				}
			}
		}
		if !frozeAny {
			// Numerical fallback: freeze all remaining at minShare.
			for f := range unfrozen {
				freeze(f, minShare)
			}
		}
	}

	// Track peaks and reschedule completions.
	for _, l := range n.links {
		var sum float64
		for f := range l.active {
			sum += f.rate
		}
		if sum > l.peakBps {
			l.peakBps = sum
		}
	}
	now := n.kernel.Now()
	for f := range n.flows {
		if f.completion != nil {
			n.kernel.Cancel(f.completion)
			f.completion = nil
		}
		if f.rate <= 0 {
			continue // starved; will be rescheduled on the next reallocate
		}
		remaining := sim.Time(f.bytesLeft * 8 / f.rate)
		eta := now + remaining
		if f.bytesLeft >= f.bytesTotal {
			// First byte has not left yet: charge path propagation delay once.
			eta += f.PathDelay()
		}
		ff := f
		f.completion = n.kernel.At(eta, func() { n.completeFlow(ff) })
	}
}

func (n *Net) completeFlow(f *Flow) {
	n.syncProgress()
	f.bytesLeft = 0
	f.finished = true
	f.finish = n.kernel.Now()
	f.completion = nil
	n.removeFlow(f)
	n.reallocate()
	if f.onDone != nil {
		f.onDone(f)
	}
}

// AvgUtilization returns the average utilization of a link over [0, now] as
// a fraction of capacity.
func (n *Net) AvgUtilization(l *Link) float64 {
	n.syncProgress()
	now := float64(n.kernel.Now())
	if now <= 0 {
		return 0
	}
	return l.bitsCarried / (l.capBps * now)
}

// BitsCarried returns the total bits delivered over the link so far.
func (n *Net) BitsCarried(l *Link) float64 {
	n.syncProgress()
	return l.bitsCarried
}
