package hpop

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// HealthRegistry aggregates per-peer health: circuit-breaker state, audit
// flags, recent latency quantiles, and reported saturation. It is the shared
// source of truth the self-healing loop acts on — the loader gates and
// re-ranks peer selection on it, the origin ejects unhealthy peers from new
// wrapper maps, and /debug/health serves its snapshot.
//
// Like Metrics and Tracer, every method is nil-receiver safe: a component
// without a registry behaves as if every peer were healthy.
type HealthRegistry struct {
	cfg BreakerConfig

	mu    sync.Mutex
	peers map[string]*peerHealth

	metrics *Metrics
}

// peerHealth is one peer's aggregated state.
type peerHealth struct {
	breaker    *Breaker
	latency    *Histogram
	flagged    bool
	saturation float64
	lastReport time.Time

	successes int64
	failures  int64
	fallbacks int64
}

// NewHealthRegistry creates a registry whose per-peer breakers use cfg (the
// zero value applies breaker defaults).
func NewHealthRegistry(cfg BreakerConfig) *HealthRegistry {
	return &HealthRegistry{cfg: cfg.withDefaults(), peers: make(map[string]*peerHealth)}
}

// SetMetrics wires a metrics registry: breaker transitions export the
// hpop.breaker.state.<peer> gauge (0 closed, 1 half-open, 2 open) and the
// hpop.breaker.opens counter.
func (r *HealthRegistry) SetMetrics(m *Metrics) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = m
	for id, ph := range r.peers {
		m.Set("hpop.breaker.state."+id, breakerGauge(ph.breaker.State()))
	}
}

// breakerGauge maps a state to its exported gauge value.
func breakerGauge(s BreakerState) float64 {
	switch s {
	case BreakerOpen:
		return 2
	case BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}

// get returns (creating if needed) a peer's entry; r.mu must be held.
func (r *HealthRegistry) get(id string) *peerHealth {
	ph, ok := r.peers[id]
	if !ok {
		ph = &peerHealth{
			breaker: NewBreaker(r.cfg),
			latency: NewHistogram(nil),
		}
		r.peers[id] = ph
		r.metrics.Set("hpop.breaker.state."+id, 0)
	}
	return ph
}

// Register ensures a peer exists in the registry (its breaker starts closed
// and its state gauge is exported immediately, so /metrics shows every known
// peer before any traffic).
func (r *HealthRegistry) Register(id string) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.get(id)
}

// observe re-exports the gauge after a breaker operation and counts trips;
// r.mu must be held.
func (r *HealthRegistry) observe(id string, ph *peerHealth, before BreakerState) {
	after := ph.breaker.State()
	if after == before {
		return
	}
	r.metrics.Set("hpop.breaker.state."+id, breakerGauge(after))
	if after == BreakerOpen {
		r.metrics.Inc("hpop.breaker.opens")
	}
}

// Allow reports whether traffic to the peer may proceed (and grants a probe
// slot when the peer's breaker is half-open). Unknown peers are allowed.
func (r *HealthRegistry) Allow(id string) bool {
	if r == nil || id == "" {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph := r.get(id)
	before := ph.breaker.State()
	ok := ph.breaker.Allow()
	r.observe(id, ph, before)
	return ok
}

// RecordSuccess feeds one successful attempt and its latency (seconds; < 0
// skips the histogram) into the peer's breaker and quantiles.
func (r *HealthRegistry) RecordSuccess(id string, latencySeconds float64) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph := r.get(id)
	ph.successes++
	if latencySeconds >= 0 {
		ph.latency.Observe(latencySeconds)
	}
	before := ph.breaker.State()
	ph.breaker.Record(true)
	r.observe(id, ph, before)
}

// RecordFailure feeds one failed attempt into the peer's breaker.
func (r *HealthRegistry) RecordFailure(id string) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph := r.get(id)
	ph.failures++
	before := ph.breaker.State()
	ph.breaker.Record(false)
	r.observe(id, ph, before)
}

// RecordFallback charges the peer for forcing an origin fallback: it counts
// as a breaker failure on top of whatever the attempt itself recorded, so a
// peer that keeps costing extra origin round trips opens its breaker even
// though every page still loads.
func (r *HealthRegistry) RecordFallback(id string) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph := r.get(id)
	ph.fallbacks++
	before := ph.breaker.State()
	ph.breaker.Record(false)
	r.observe(id, ph, before)
}

// SetFlagged marks (or clears) a peer's audit flag. Flagged peers rank last
// and are never Healthy, independent of breaker state.
func (r *HealthRegistry) SetFlagged(id string, flagged bool) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.get(id).flagged = flagged
}

// Flagged reports a peer's audit flag.
func (r *HealthRegistry) Flagged(id string) bool {
	if r == nil || id == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph, ok := r.peers[id]
	return ok && ph.flagged
}

// ReportSaturation records a peer's self-reported load (inflight/capacity;
// >= 1 means the peer is shedding).
func (r *HealthRegistry) ReportSaturation(id string, sat float64) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph := r.get(id)
	ph.saturation = sat
	ph.lastReport = r.cfg.Now()
}

// State returns the peer's breaker state (closed for unknown peers).
func (r *HealthRegistry) State(id string) BreakerState {
	if r == nil || id == "" {
		return BreakerClosed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph, ok := r.peers[id]
	if !ok {
		return BreakerClosed
	}
	return ph.breaker.State()
}

// Healthy reports whether a peer is fully admittable: breaker closed and not
// audit-flagged. Unknown peers are healthy.
func (r *HealthRegistry) Healthy(id string) bool {
	if r == nil || id == "" {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph, ok := r.peers[id]
	if !ok {
		return true
	}
	return ph.breaker.State() == BreakerClosed && !ph.flagged
}

// ProbeDue reports whether the peer's breaker would admit a recovery probe
// right now (never true for flagged peers — audit flags are cleared by the
// origin, not by traffic).
func (r *HealthRegistry) ProbeDue(id string) bool {
	if r == nil || id == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph, ok := r.peers[id]
	if !ok || ph.flagged {
		return false
	}
	return ph.breaker.ProbeDue()
}

// Rank reorders peer IDs by health: closed before half-open before open,
// unflagged before flagged. The sort is stable and health state is the ONLY
// key, so equally healthy peers keep their incoming (wrapper) order — the
// origin's assignment balances load across peers, and re-ranking healthy
// peers by anything else (latency, say) would concentrate every request on
// one peer and starve the others of the traffic their health signal needs.
//
// One deliberate inversion: an unflagged peer whose breaker is due for a
// probe ranks FIRST. Half-open recovery is traffic-driven, and a peer that
// ranks last never sees traffic while its replicas keep succeeding — it
// would stay open forever. Promoting it steers exactly one real request at
// it per cooldown (the probe budget gates the rest), which is the canary
// that either re-admits the peer or re-opens the breaker.
func (r *HealthRegistry) Rank(ids []string) []string {
	out := append([]string(nil), ids...)
	if r == nil || len(out) < 2 {
		return out
	}
	key := func(id string) int {
		r.mu.Lock()
		defer r.mu.Unlock()
		ph, ok := r.peers[id]
		if !ok {
			return 0
		}
		if !ph.flagged && ph.breaker.ProbeDue() {
			return -1
		}
		k := 0
		switch ph.breaker.State() {
		case BreakerHalfOpen:
			k = 1
		case BreakerOpen:
			k = 2
		}
		if ph.flagged {
			k += 3
		}
		return k
	}
	sort.SliceStable(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

// PeerHealth is one peer's row in the /debug/health snapshot.
type PeerHealth struct {
	ID          string    `json:"id"`
	State       string    `json:"state"`
	FailureRate float64   `json:"failureRate"`
	Samples     int       `json:"samples"`
	Opens       int64     `json:"opens"`
	Flagged     bool      `json:"flagged"`
	Saturation  float64   `json:"saturation"`
	LatencyP50  float64   `json:"latencyP50Seconds"`
	LatencyP99  float64   `json:"latencyP99Seconds"`
	Successes   int64     `json:"successes"`
	Failures    int64     `json:"failures"`
	Fallbacks   int64     `json:"fallbacks"`
	LastReport  time.Time `json:"lastReport,omitempty"`
}

// HealthSnapshot is the /debug/health JSON shape.
type HealthSnapshot struct {
	Peers []PeerHealth `json:"peers"`
}

// Snapshot returns the registry state, peers sorted by ID.
func (r *HealthRegistry) Snapshot() HealthSnapshot {
	snap := HealthSnapshot{Peers: []PeerHealth{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, ph := range r.peers {
		rate, samples := ph.breaker.FailureRate()
		snap.Peers = append(snap.Peers, PeerHealth{
			ID:          id,
			State:       ph.breaker.State().String(),
			FailureRate: rate,
			Samples:     samples,
			Opens:       ph.breaker.Opens(),
			Flagged:     ph.flagged,
			Saturation:  ph.saturation,
			LatencyP50:  ph.latency.Quantile(0.5),
			LatencyP99:  ph.latency.Quantile(0.99),
			Successes:   ph.successes,
			Failures:    ph.failures,
			Fallbacks:   ph.fallbacks,
			LastReport:  ph.lastReport,
		})
	}
	sort.Slice(snap.Peers, func(i, j int) bool { return snap.Peers[i].ID < snap.Peers[j].ID })
	return snap
}

// Handler serves the registry snapshot as JSON at GET /debug/health.
// Nil-receiver safe: a daemon without a registry serves an empty peer list.
func (r *HealthRegistry) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(r.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
