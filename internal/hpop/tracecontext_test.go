package hpop

import (
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"
)

// testTracer returns a tracer with deterministic IDs and a fixed clock.
func testTracer(seed uint64) *Tracer {
	t := NewTracer(0)
	rng := rand.New(rand.NewSource(int64(seed)))
	t.id64 = rng.Uint64
	t.nextID.Store(t.id64())
	base := time.Unix(1700000000, 0).UTC()
	var tick time.Duration
	t.SetClock(func() time.Time {
		tick += time.Millisecond
		return base.Add(tick)
	})
	return t
}

// TestTraceparentRoundTripProperty is the round-trip property test: for many
// random valid contexts, Traceparent() must parse back to the identical
// context.
func TestTraceparentRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		var id TraceID
		for id.IsZero() {
			rng.Read(id[:])
		}
		tc := TraceContext{
			TraceID: id,
			SpanID:  rng.Uint64() | 1, // nonzero
			Sampled: rng.Intn(2) == 0,
		}
		header := tc.Traceparent()
		if len(header) != 55 {
			t.Fatalf("traceparent %q: len = %d, want 55", header, len(header))
		}
		got, err := ParseTraceparent(header)
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", header, err)
		}
		if got != tc {
			t.Fatalf("round trip: got %+v, want %+v", got, tc)
		}
	}
}

// TestParseTraceparentRejectsMalformed pins the strict-parse behaviour: every
// corruption must fail parsing (and so degrade the receiver to a fresh root).
func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	cases := map[string]string{
		"empty":          "",
		"truncated":      valid[:54],
		"extended":       valid + "0",
		"bad version":    "01" + valid[2:],
		"ff version":     "ff" + valid[2:],
		"zero trace id":  "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero parent id": "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"uppercase hex":  strings.ToUpper(valid),
		"non-hex trace":  "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01",
		"non-hex flags":  valid[:53] + "zz",
		"wrong dashes":   strings.Replace(valid, "-", "_", 3),
		"spaces":         strings.Replace(valid, "-", " ", 3),
	}
	for name, in := range cases {
		if tc, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) = %+v, want error", name, in, tc)
		}
	}
}

// TestInjectExtractTraceparent exercises the HTTP header half: inject from a
// live span, extract on the "other side", and check the zero value comes back
// for absent or corrupted headers.
func TestInjectExtractTraceparent(t *testing.T) {
	tr := testTracer(1)
	sp := tr.Start("svc", "op")
	h := http.Header{}
	InjectTraceparent(h, sp)
	if h.Get(TraceparentHeader) == "" {
		t.Fatal("no traceparent injected from live span")
	}
	tc := ExtractTraceparent(h)
	if !tc.Valid() || !tc.Sampled {
		t.Fatalf("extracted context invalid: %+v", tc)
	}
	if want := sp.Context(); tc != want {
		t.Fatalf("extracted %+v, want %+v", tc, want)
	}
	sp.End()

	// Nil span injects nothing.
	h2 := http.Header{}
	InjectTraceparent(h2, nil)
	if got := h2.Get(TraceparentHeader); got != "" {
		t.Errorf("nil span injected %q", got)
	}
	// Absent header extracts the zero context.
	if tc := ExtractTraceparent(http.Header{}); tc.Valid() {
		t.Errorf("absent header extracted valid context %+v", tc)
	}
	// A bit-flipped header extracts the zero context.
	h.Set(TraceparentHeader, corruptHeader(h.Get(TraceparentHeader)))
	if tc := ExtractTraceparent(h); tc.Valid() {
		t.Errorf("corrupted header extracted valid context %+v", tc)
	}
}

// corruptHeader flips one hex character of the trace-id field to a non-hex
// byte, simulating wire corruption.
func corruptHeader(s string) string {
	b := []byte(s)
	b[5] = 'z'
	return string(b)
}

// TestStartRemoteSemantics pins the three StartRemote behaviours: valid
// sampled parent continues the trace, valid unsampled parent drops the span,
// invalid parent degrades to a fresh root.
func TestStartRemoteSemantics(t *testing.T) {
	up := testTracer(2)
	down := testTracer(3)

	root := up.Start("loader", "load_page")
	parent := root.Context()
	cont := down.StartRemote("peer", "proxy", parent)
	if cont == nil {
		t.Fatal("StartRemote with valid parent returned nil")
	}
	if got := cont.Context().TraceID; got != parent.TraceID {
		t.Errorf("continued span trace = %s, want %s", got, parent.TraceID)
	}
	cont.End()
	recs := down.TraceSpans(parent.TraceID)
	if len(recs) != 1 {
		t.Fatalf("TraceSpans = %d records, want 1", len(recs))
	}
	if recs[0].ParentID != parent.SpanID {
		t.Errorf("continued span parent = %d, want %d", recs[0].ParentID, parent.SpanID)
	}
	root.End()

	// Unsampled parent: honor the upstream drop.
	unsampled := parent
	unsampled.Sampled = false
	if sp := down.StartRemote("peer", "proxy", unsampled); sp != nil {
		t.Error("StartRemote with unsampled parent returned a live span")
	}

	// Invalid parent: fresh root with a new nonzero trace ID.
	fresh := down.StartRemote("peer", "proxy", TraceContext{})
	if fresh == nil {
		t.Fatal("StartRemote with zero parent returned nil")
	}
	fctx := fresh.Context()
	if !fctx.Valid() {
		t.Fatalf("fresh root context invalid: %+v", fctx)
	}
	if fctx.TraceID == parent.TraceID {
		t.Error("fresh root reused the upstream trace ID")
	}
	fresh.End()

	// Nil tracer absorbs everything.
	var nilT *Tracer
	if sp := nilT.StartRemote("x", "y", parent); sp != nil {
		t.Error("nil tracer StartRemote returned a span")
	}
}

// TestStitchTraceCrossProcess builds one logical trace across three tracers
// (simulated processes) and checks StitchTrace reassembles a single tree with
// correct parentage, deduping a daemon queried twice.
func TestStitchTraceCrossProcess(t *testing.T) {
	loader := testTracer(10)
	peer := testTracer(11)
	origin := testTracer(12)

	root := loader.Start("nocdn.loader", "load_page")
	fetch := root.Child("fetch_object")
	proxy := peer.StartRemote("nocdn.peer", "proxy", fetch.Context())
	settle := origin.StartRemote("nocdn.origin", "settle_record", fetch.Context())
	settle.End()
	proxy.End()
	fetch.End()
	root.End()

	id := root.Context().TraceID
	var all []SpanRecord
	all = append(all, loader.TraceSpans(id)...)
	all = append(all, peer.TraceSpans(id)...)
	all = append(all, origin.TraceSpans(id)...)
	all = append(all, peer.TraceSpans(id)...) // the same daemon queried twice
	if len(all) != 5 {
		t.Fatalf("collected %d spans, want 5 (incl. duplicate)", len(all))
	}

	roots := StitchTrace(all)
	if len(roots) != 1 {
		t.Fatalf("stitched %d roots, want 1", len(roots))
	}
	tree := roots[0]
	if tree.Name != "load_page" || len(tree.Children) != 1 {
		t.Fatalf("bad root: %s with %d children", tree.Name, len(tree.Children))
	}
	fo := tree.Children[0]
	if fo.Name != "fetch_object" || len(fo.Children) != 2 {
		t.Fatalf("bad fetch_object node: %s with %d children", fo.Name, len(fo.Children))
	}
	services := map[string]bool{}
	for _, c := range fo.Children {
		services[c.Service] = true
	}
	if !services["nocdn.peer"] || !services["nocdn.origin"] {
		t.Errorf("fetch_object children from %v, want peer and origin", services)
	}

	// A subset missing the root still stitches: the orphan becomes a root.
	orphans := StitchTrace(peer.TraceSpans(id))
	if len(orphans) != 1 || orphans[0].Name != "proxy" {
		t.Errorf("orphan stitch = %+v, want single proxy root", orphans)
	}
}

// TestTracerSpanIDBaseRandomized checks that two tracers mint from different
// span-ID bases, so cross-process stitching cannot collide IDs.
func TestTracerSpanIDBaseRandomized(t *testing.T) {
	a, b := testTracer(100), testTracer(200)
	sa, sb := a.Start("s", "a"), b.Start("s", "b")
	if sa.id == sb.id {
		t.Errorf("two tracers minted the same first span ID %d", sa.id)
	}
	sa.End()
	sb.End()
}

// FuzzParseTraceparent checks the strict parser never panics and that every
// header it accepts round-trips losslessly.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("")
	f.Add("garbage")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			return
		}
		if !tc.Valid() {
			t.Fatalf("accepted header %q produced invalid context", s)
		}
		re, err := ParseTraceparent(tc.Traceparent())
		if err != nil || re != tc {
			t.Fatalf("accepted header %q did not round-trip: %+v vs %+v (%v)", s, tc, re, err)
		}
	})
}
