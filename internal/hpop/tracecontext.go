package hpop

import (
	"encoding/hex"
	"fmt"
	"net/http"
)

// TraceparentHeader is the W3C Trace Context header name carried on every
// cross-process hop (loader→peer fetches, peer→origin uploads, replicator
// WebDAV operations, DCol signaling).
const TraceparentHeader = "traceparent"

// TraceID is a 128-bit trace identifier shared by every span of one
// distributed trace, across processes. The zero value is invalid (W3C
// reserves the all-zero trace-id as malformed).
type TraceID [16]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the trace ID as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses a 32-character lowercase-hex trace ID. The all-zero ID
// is rejected, as the W3C spec requires.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 || !isLowerHex(s) {
		return TraceID{}, fmt.Errorf("hpop: malformed trace id %q", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("hpop: malformed trace id %q: %v", s, err)
	}
	if id.IsZero() {
		return TraceID{}, fmt.Errorf("hpop: all-zero trace id")
	}
	return id, nil
}

// TraceContext is a span's position in a distributed trace, as carried
// between processes by the traceparent header: which trace, which span is
// the remote parent, and whether the trace is being recorded. The zero value
// is invalid; StartRemote treats it as "no parent" and opens a fresh root.
type TraceContext struct {
	TraceID TraceID
	SpanID  uint64
	Sampled bool
}

// Valid reports whether the context names a real trace position (non-zero
// trace and span IDs).
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && tc.SpanID != 0 }

// Traceparent renders the context as a W3C traceparent header value
// ("00-<trace-id>-<parent-id>-<flags>"), or "" when the context is invalid —
// callers can unconditionally set the result and skip empty values.
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%016x-%s", tc.TraceID, tc.SpanID, flags)
}

// ParseTraceparent parses a W3C traceparent header value. Only version 00 is
// accepted; field lengths, lowercase hex, and the non-zero trace-id/parent-id
// requirements are enforced strictly, so a corrupted header degrades to an
// error (and the receiver to a fresh root span) rather than a poisoned trace.
func ParseTraceparent(s string) (TraceContext, error) {
	// 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-xxxxxxxxxxxxxxxx-xx
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, fmt.Errorf("hpop: malformed traceparent %q", s)
	}
	if s[:2] != "00" {
		return TraceContext{}, fmt.Errorf("hpop: unsupported traceparent version %q", s[:2])
	}
	traceID, err := ParseTraceID(s[3:35])
	if err != nil {
		return TraceContext{}, err
	}
	spanHex := s[36:52]
	if !isLowerHex(spanHex) {
		return TraceContext{}, fmt.Errorf("hpop: malformed parent id %q", spanHex)
	}
	var spanID uint64
	for i := 0; i < len(spanHex); i++ {
		spanID = spanID<<4 | uint64(hexVal(spanHex[i]))
	}
	if spanID == 0 {
		return TraceContext{}, fmt.Errorf("hpop: all-zero parent id")
	}
	flagsHex := s[53:]
	if !isLowerHex(flagsHex) {
		return TraceContext{}, fmt.Errorf("hpop: malformed flags %q", flagsHex)
	}
	flags := hexVal(flagsHex[0])<<4 | hexVal(flagsHex[1])
	return TraceContext{TraceID: traceID, SpanID: spanID, Sampled: flags&0x01 != 0}, nil
}

// InjectTraceparent stamps the span's trace position onto outbound request
// headers. A nil span (unsampled, nil tracer) injects nothing, so downstream
// processes make their own fresh-root decision.
func InjectTraceparent(h http.Header, sp *Span) {
	if tp := sp.Context().Traceparent(); tp != "" {
		h.Set(TraceparentHeader, tp)
	}
}

// ExtractTraceparent reads the trace position from inbound request headers.
// An absent or malformed header yields the zero TraceContext, which
// StartRemote turns into a fresh root span — corruption never propagates.
func ExtractTraceparent(h http.Header) TraceContext {
	tc, err := ParseTraceparent(h.Get(TraceparentHeader))
	if err != nil {
		return TraceContext{}
	}
	return tc
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

func hexVal(c byte) int {
	if c <= '9' {
		return int(c - '0')
	}
	return int(c-'a') + 10
}
