package hpop

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricsSnapshotCollision is the regression test for the
// gauge-shadows-counter bug: a name used as both a counter and a gauge used
// to collapse into one map entry (whichever kind iterated last won). Now
// both survive under kind prefixes, while non-colliding names stay bare.
func TestMetricsSnapshotCollision(t *testing.T) {
	m := NewMetrics()
	m.Add("requests", 3)
	m.Set("requests", 41) // same name as a gauge — the old code lost one
	m.Inc("retries")
	m.Set("cache.bytes", 512)

	snap := m.Snapshot()
	if got := snap["counter:requests"]; got != 3 {
		t.Errorf("counter:requests = %v, want 3", got)
	}
	if got := snap["gauge:requests"]; got != 41 {
		t.Errorf("gauge:requests = %v, want 41", got)
	}
	if _, ok := snap["requests"]; ok {
		t.Error("colliding bare name still present in snapshot")
	}
	// Non-colliding names are unprefixed, so existing callers keep working.
	if got := snap["retries"]; got != 1 {
		t.Errorf("retries = %v, want 1", got)
	}
	if got := snap["cache.bytes"]; got != 512 {
		t.Errorf("cache.bytes = %v, want 512", got)
	}
}

// TestMetricsHistogramQuantileTable drives Quantile through the edge cases:
// empty histograms, single samples, exact bucket boundaries, sub-first-bound
// samples, the overflow bucket, and out-of-range p.
func TestMetricsHistogramQuantileTable(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"empty", nil, 0.5, 0},
		{"single mid-bucket p=0", []float64{1.5}, 0, 1},
		{"single mid-bucket p=0.5", []float64{1.5}, 0.5, 1.5},
		{"single mid-bucket p=1", []float64{1.5}, 1, 2},
		{"exact boundary lands inclusive", []float64{2}, 1, 2},
		{"below first bound interpolates from 0", []float64{0.5}, 0.5, 0.5},
		{"overflow clamps to last bound", []float64{100}, 0.99, 4},
		{"spread p=0.25", []float64{0.5, 1.5, 3, 100}, 0.25, 1},
		{"spread p=0.5", []float64{0.5, 1.5, 3, 100}, 0.5, 2},
		{"spread p=0.75", []float64{0.5, 1.5, 3, 100}, 0.75, 4},
		{"spread p=1 hits overflow", []float64{0.5, 1.5, 3, 100}, 1, 4},
		{"spread fractional", []float64{0.5, 1.5, 3, 100}, 0.1, 0.4},
		{"p clamped below", []float64{1.5}, -3, 1},
		{"p clamped above", []float64{1.5}, 7, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(bounds)
			for _, v := range tc.samples {
				h.Observe(v)
			}
			if got := h.Quantile(tc.p); got != tc.want {
				t.Errorf("Quantile(%v) = %v, want %v (samples %v)", tc.p, got, tc.want, tc.samples)
			}
		})
	}
}

// TestMetricsHistogramStats covers Count/Sum/Mean and default bounds.
func TestMetricsHistogramStats(t *testing.T) {
	h := NewHistogram(nil)
	if got := len(h.Bounds()); got != 26 {
		t.Fatalf("default bounds = %d, want 26", got)
	}
	if h.Mean() != 0 {
		t.Error("empty Mean != 0")
	}
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 6 || h.Mean() != 2 {
		t.Errorf("count/sum/mean = %d/%v/%v, want 3/6/2", h.Count(), h.Sum(), h.Mean())
	}
	// Nil histograms absorb everything (unregistered metrics paths).
	var nilH *Histogram
	nilH.Observe(1)
	nilH.ObserveSince(time.Now())
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Bounds() != nil {
		t.Error("nil histogram not inert")
	}
}

// TestMetricsHistogramQuantileMonotone is the property test: for any sample
// set, Quantile must be non-decreasing in p (the acceptance criterion's
// "p50 <= p99" generalized).
func TestMetricsHistogramQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram(nil)
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			// Mix of microseconds to minutes, including overflow territory.
			h.Observe(math.Exp(rng.Float64()*24 - 14))
		}
		prev := -1.0
		for p := 0.0; p <= 1.0; p += 0.01 {
			q := h.Quantile(p)
			if q < prev {
				t.Fatalf("trial %d: Quantile(%v) = %v < Quantile(prev) = %v", trial, p, q, prev)
			}
			prev = q
		}
	}
}

// TestMetricsHistogramHammer races Observe against Snapshot/Quantile/
// exposition readers; run with -race this proves the lock-free hot path is
// actually safe, not just fast.
func TestMetricsHistogramHammer(t *testing.T) {
	m := NewMetrics()
	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent readers while writes are in flight
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Snapshot()
			m.Histogram("lat").Quantile(0.99)
			m.WriteExposition(io.Discard)
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				m.Observe("lat", float64(i%100)/1000)
				m.Inc("ops")
				m.Set("gauge", float64(i))
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := m.Histogram("lat").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := m.Counter("ops"); got != workers*perWorker {
		t.Errorf("ops = %v, want %d", got, workers*perWorker)
	}
}

// TestMetricsExpositionGolden pins the /metrics text format byte for byte.
// Regenerate with: go test ./internal/hpop -run TestMetricsExpositionGolden -update
func TestMetricsExpositionGolden(t *testing.T) {
	m := NewMetrics()
	m.Add("nocdn.loader.retries", 2)
	m.Inc("attic.replicator.giveups")
	m.Set("cache.bytes", 1536)
	h := m.HistogramWithBounds("fetch_seconds", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 0.5, 2.5} {
		h.Observe(v)
	}
	// The fleet-telemetry rollup names and the scrape self-metric (PR 9).
	m.Add("fleet.nocdn.peer.hits", 12)
	m.Add("fleet.telemetry.reports", 3)
	m.Set("fleet.telemetry.active_sources", 2)
	fh := m.HistogramWithBounds("fleet.nocdn.peer.serve_seconds", []float64{0.001, 0.01, 0.1, 1})
	fh.Observe(0.004)
	fh.Observe(0.02)
	m.HistogramWithBounds("hpop.scrape.duration_seconds", []float64{0.001, 0.01, 0.1, 1}).Observe(0.002)

	var sb strings.Builder
	if err := m.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Rendering twice must be byte-identical (sorted sections, stable floats).
	var sb2 strings.Builder
	m.WriteExposition(&sb2)
	if sb2.String() != got {
		t.Error("exposition not deterministic across calls")
	}
}

// TestMetricsScrapeSelfMetric: each /metrics scrape times itself into
// hpop.scrape.duration_seconds; the sample lands after the write, so it is
// visible from the second scrape onward.
func TestMetricsScrapeSelfMetric(t *testing.T) {
	m := NewMetrics()
	handler := MetricsHandler(m)

	rr := httptest.NewRecorder()
	handler(rr, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rr.Body.String(), "hpop.scrape.duration_seconds") {
		t.Fatal("first scrape should not yet expose the self-metric")
	}
	if got := m.Histogram("hpop.scrape.duration_seconds").Count(); got != 1 {
		t.Fatalf("scrape histogram count = %d after first scrape, want 1", got)
	}

	rr = httptest.NewRecorder()
	handler(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "# TYPE hpop.scrape.duration_seconds histogram") {
		t.Fatalf("second scrape missing self-metric:\n%s", body)
	}
	if !strings.Contains(body, "hpop.scrape.duration_seconds.count 1") {
		t.Fatalf("self-metric count not exposed:\n%s", body)
	}
}

// TestTracesHandlerFilters (satellite): ?service= and ?min_ms= narrow the
// span dump, individually and combined, and bad values are a 400.
func TestTracesHandlerFilters(t *testing.T) {
	clock := newSLOClock()
	tr := NewTracer(64)
	tr.SetClock(clock.Now)
	emit := func(service, name string, d time.Duration) {
		sp := tr.Start(service, name)
		clock.Advance(d)
		sp.End()
	}
	emit("nocdn.peer", "proxy", 2*time.Millisecond)
	emit("nocdn.peer", "proxy", 40*time.Millisecond)
	emit("nocdn.origin", "wrapper", 60*time.Millisecond)
	emit("nocdn.origin", "wrapper", time.Millisecond)

	handler := TracesHandler(tr)
	fetch := func(query string) []SpanRecord {
		t.Helper()
		rr := httptest.NewRecorder()
		handler(rr, httptest.NewRequest("GET", "/debug/traces"+query, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", query, rr.Code, rr.Body.String())
		}
		var resp struct {
			Spans []SpanRecord `json:"spans"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad JSON for %s: %v", query, err)
		}
		return resp.Spans
	}

	if spans := fetch(""); len(spans) != 4 {
		t.Fatalf("unfiltered = %d spans, want 4", len(spans))
	}
	spans := fetch("?service=nocdn.peer")
	if len(spans) != 2 {
		t.Fatalf("service filter = %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Service != "nocdn.peer" {
			t.Fatalf("service filter leaked %q", s.Service)
		}
	}
	spans = fetch("?min_ms=10")
	if len(spans) != 2 {
		t.Fatalf("min_ms filter = %d spans, want 2 (40ms + 60ms)", len(spans))
	}
	for _, s := range spans {
		if s.DurationMS < 10 {
			t.Fatalf("min_ms filter leaked %vms", s.DurationMS)
		}
	}
	spans = fetch("?service=nocdn.origin&min_ms=10")
	if len(spans) != 1 || spans[0].Name != "wrapper" || spans[0].DurationMS < 10 {
		t.Fatalf("combined filter = %+v, want the one slow wrapper span", spans)
	}
	// Filters apply before the n-limit: the newest matching span survives.
	spans = fetch("?service=nocdn.peer&n=1")
	if len(spans) != 1 || spans[0].DurationMS < 10 {
		t.Fatalf("filter+limit = %+v, want the newest (slow) peer span", spans)
	}

	for _, bad := range []string{"?min_ms=-1", "?min_ms=x", "?n=0"} {
		rr := httptest.NewRecorder()
		handler(rr, httptest.NewRequest("GET", "/debug/traces"+bad, nil))
		if rr.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", bad, rr.Code)
		}
	}
}

// TestMetricsTracesJSONRoundTrip pushes a span tree through TracesHandler
// and checks the JSON decodes back into identical records.
func TestMetricsTracesJSONRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	step := 0
	tr.SetClock(func() time.Time { step++; return base.Add(time.Duration(step) * time.Millisecond) })

	root := tr.Start("nocdn.loader", "load_page")
	root.SetLabel("page", "home")
	child := root.Child("origin_fallback")
	child.SetLabel("reason", "tampered")
	child.SetError(errors.New("hash mismatch"))
	child.End()
	root.End()

	srv := httptest.NewServer(TracesHandler(tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := tr.Recent(0)
	if len(got.Spans) != len(want) || len(want) != 2 {
		t.Fatalf("spans = %d, want %d (and 2)", len(got.Spans), len(want))
	}
	for i := range want {
		g, w := got.Spans[i], want[i]
		if g.ID != w.ID || g.ParentID != w.ParentID || g.Service != w.Service ||
			g.Name != w.Name || g.DurationMS != w.DurationMS || g.Error != w.Error {
			t.Errorf("span %d: got %+v, want %+v", i, g, w)
		}
		if !g.Start.Equal(w.Start) || !g.End.Equal(w.End) {
			t.Errorf("span %d times drifted through JSON: %v/%v vs %v/%v",
				i, g.Start, g.End, w.Start, w.End)
		}
		if fmt.Sprint(g.Labels) != fmt.Sprint(w.Labels) {
			t.Errorf("span %d labels = %v, want %v", i, g.Labels, w.Labels)
		}
	}
	// The child committed first (spans commit at End), parented to the root.
	if got.Spans[0].Name != "origin_fallback" || got.Spans[0].ParentID != got.Spans[1].ID {
		t.Errorf("span tree shape wrong: %+v", got.Spans)
	}

	// Malformed n is a client error, not a panic or empty 200.
	resp2, err := http.Get(srv.URL + "?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n status = %d, want 400", resp2.StatusCode)
	}
}

// TestMetricsTracerRingAndSampling covers the bounded ring (oldest spans
// evicted, order preserved) and per-service sampling with an injected RNG.
func TestMetricsTracerRingAndSampling(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Start("svc", fmt.Sprintf("op%d", i)).End()
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(recent))
	}
	for i, rec := range recent {
		if want := fmt.Sprintf("op%d", i+2); rec.Name != want {
			t.Errorf("recent[%d] = %q, want %q (oldest first)", i, rec.Name, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].Name != "op5" {
		t.Errorf("Recent(2) = %+v", got)
	}

	// rate 0: never sampled; the nil span absorbs the whole API.
	tr.SetSampleRate("quiet", 0)
	sp := tr.Start("quiet", "dropped")
	if sp != nil {
		t.Fatal("rate-0 service still sampled")
	}
	sp.SetLabel("k", "v")
	sp.SetError(errors.New("x"))
	sp.Child("c").End()
	sp.End()

	// Deterministic draw just above/below the rate flips the decision.
	tr2 := NewTracer(4)
	tr2.SetSampleRate("s", 0.5)
	tr2.SetRand(func() float64 { return 0.9 })
	if tr2.Start("s", "a") != nil {
		t.Error("draw 0.9 >= rate 0.5 should drop")
	}
	tr2.SetRand(func() float64 { return 0.1 })
	if tr2.Start("s", "b") == nil {
		t.Error("draw 0.1 < rate 0.5 should record")
	}

	// Nil tracer: everything absorbs.
	var nilT *Tracer
	nilT.SetSampleRate("x", 1)
	nilT.Start("x", "y").End()
	if nilT.Recent(0) != nil {
		t.Error("nil tracer returned spans")
	}
}

// TestMetricsHealthHandler covers both readiness verdicts and the JSON shape.
func TestMetricsHealthHandler(t *testing.T) {
	okBody := func(health func() map[string]error) (int, HealthResponse) {
		rec := httptest.NewRecorder()
		HealthHandler("box", health)(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var hr HealthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
			t.Fatal(err)
		}
		return rec.Code, hr
	}
	code, hr := okBody(func() map[string]error { return map[string]error{"attic": nil, "pim": nil} })
	if code != http.StatusOK || hr.Status != "ok" || hr.Services["attic"] != "ok" {
		t.Errorf("healthy = %d %+v", code, hr)
	}
	code, hr = okBody(func() map[string]error {
		return map[string]error{"attic": errors.New("quota exhausted"), "pim": nil}
	})
	if code != http.StatusServiceUnavailable || hr.Status != "degraded" ||
		hr.Services["attic"] != "quota exhausted" || hr.Services["pim"] != "ok" {
		t.Errorf("degraded = %d %+v", code, hr)
	}
	if code, hr = okBody(nil); code != http.StatusOK || hr.Status != "ok" {
		t.Errorf("nil health fn = %d %+v", code, hr)
	}
}

// TestMetricsDebugMux checks the opt-in debug surface wires every endpoint,
// including pprof.
func TestMetricsDebugMux(t *testing.T) {
	m := NewMetrics()
	m.Inc("x")
	tr := NewTracer(4)
	tr.Start("s", "op").End()
	srv := httptest.NewServer(DebugMux("box", m, tr, nil))
	defer srv.Close()
	for path, wantIn := range map[string]string{
		"/metrics":      "# TYPE x counter",
		"/healthz":      `"status":"ok"`,
		"/debug/traces": `"spans"`,
		"/debug/pprof/": "profiles",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if !strings.Contains(body, wantIn) {
			t.Errorf("%s body missing %q: %.200s", path, wantIn, body)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// BenchmarkMetricsAddParallel is the sharded hot path; compare against
// BenchmarkMetricsAddParallelMutexBaseline (the old design: one registry
// lock around a plain map) to confirm sharding did not regress and scales
// under parallel writers.
func BenchmarkMetricsAddParallel(b *testing.B) {
	m := NewMetrics()
	names := benchNames()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Add(names[i&7], 1)
			i++
		}
	})
}

// mutexFloats is the pre-sharding design, kept here as the benchmark
// baseline: every Add serializes on one lock.
type mutexFloats struct {
	mu   sync.Mutex
	vals map[string]float64
}

func (m *mutexFloats) Add(name string, delta float64) {
	m.mu.Lock()
	m.vals[name] += delta
	m.mu.Unlock()
}

func BenchmarkMetricsAddParallelMutexBaseline(b *testing.B) {
	m := &mutexFloats{vals: make(map[string]float64)}
	names := benchNames()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Add(names[i&7], 1)
			i++
		}
	})
}

func BenchmarkMetricsObserveParallel(b *testing.B) {
	m := NewMetrics()
	h := m.Histogram("lat")
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i&1023) / 1e4)
			i++
		}
	})
}

func benchNames() [8]string {
	var names [8]string
	for i := range names {
		names[i] = fmt.Sprintf("bench.counter.%d", i)
	}
	return names
}
