package hpop

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// sloClock is a mutex-guarded fake clock for deterministic burn windows.
type sloClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSLOClock() *sloClock {
	return &sloClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *sloClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sloClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func findSLO(t *testing.T, snap SLOSnapshot, name string) SLOStatus {
	t.Helper()
	for _, s := range snap.SLOs {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("SLO %q missing from %+v", name, snap)
	return SLOStatus{}
}

// TestSLOEngineBurnWindows: the 5m window trips before the 1h window on a
// burst of bad events, budget drains deterministically on the fake clock,
// and the fast-burn rising edge exports a gauge and an slo_burn span.
func TestSLOEngineBurnWindows(t *testing.T) {
	clock := newSLOClock()
	e := NewSLOEngine(clock.Now)
	m := NewMetrics()
	tr := NewTracer(64)
	tr.SetClock(clock.Now)
	e.SetMetrics(m)
	e.SetTracer(tr)
	e.Declare(SLOConfig{Name: "availability", Objective: 0.999})

	// An hour of clean traffic spread over the ring.
	for i := 0; i < 60; i++ {
		e.Record("availability", 1000, 0)
		clock.Advance(time.Minute)
	}
	s := findSLO(t, e.Snapshot(), "availability")
	if s.BurnRate1h != 0 || s.BudgetRemaining1h != 1 || s.FastBurn {
		t.Fatalf("clean traffic burned budget: %+v", s)
	}

	// A two-minute 50% outage burst: the 5m window sees mostly the burst,
	// the 1h window dilutes it — multi-window burn in action.
	for i := 0; i < 2; i++ {
		e.Record("availability", 500, 500)
		clock.Advance(time.Minute)
	}
	s = findSLO(t, e.Snapshot(), "availability")
	if s.BurnRate5m <= s.BurnRate1h {
		t.Fatalf("5m window (%v) should trip before 1h (%v)", s.BurnRate5m, s.BurnRate1h)
	}
	if s.BurnRate5m < DefaultFastBurn {
		t.Fatalf("a 50%% outage must exceed the fast-burn threshold: %v", s.BurnRate5m)
	}
	if !s.FastBurn {
		t.Fatalf("fast burn not raised: %+v", s)
	}
	// Exact determinism on the fake clock: the 1h ring (240 x 15s) ends at
	// minute 62, so it holds the clean minutes 3..59 plus the burst —
	// 58000 good, 1000 bad; the allowed budget is 59000 * 0.001 = 59, so
	// the budget is overspent and the gauge clamps at 0.
	if s.Good1h != 58000 || s.Bad1h != 1000 {
		t.Fatalf("1h window sums = %v/%v, want 58000/1000", s.Good1h, s.Bad1h)
	}
	if s.BudgetRemaining1h != 0 {
		t.Fatalf("overspent budget must clamp to 0: %v", s.BudgetRemaining1h)
	}

	if m.Gauge("slo.availability.fast_burn") != 1 {
		t.Fatalf("fast_burn gauge = %v", m.Gauge("slo.availability.fast_burn"))
	}
	if m.Gauge("slo.availability.burn_rate_5m") != s.BurnRate5m {
		t.Fatalf("burn gauge diverged from snapshot")
	}
	var burnSpans int
	for _, rec := range tr.Recent(0) {
		if rec.Name == "slo_burn" && rec.Labels["slo"] == "availability" {
			burnSpans++
		}
	}
	if burnSpans != 1 {
		t.Fatalf("slo_burn spans = %d, want exactly 1 (edge-triggered)", burnSpans)
	}

	// The burst ages out of the 5m window; fast burn clears and the span
	// count stays at one (no re-trigger without a new edge).
	for i := 0; i < 10; i++ {
		e.Record("availability", 1000, 0)
		clock.Advance(time.Minute)
	}
	s = findSLO(t, e.Snapshot(), "availability")
	if s.FastBurn || s.BurnRate5m != 0 {
		t.Fatalf("burst did not age out of 5m window: %+v", s)
	}
	if m.Gauge("slo.availability.fast_burn") != 0 {
		t.Fatal("fast_burn gauge stuck")
	}
}

// TestSLOBudgetPartialDrain: a drain within the budget reports the exact
// remaining fraction.
func TestSLOBudgetPartialDrain(t *testing.T) {
	clock := newSLOClock()
	e := NewSLOEngine(clock.Now)
	e.Declare(SLOConfig{Name: "avail", Objective: 0.99})
	// 10 bad of 10000 against a 1% budget: allowed = 100, remaining = 0.9.
	e.Record("avail", 9990, 10)
	s := findSLO(t, e.Snapshot(), "avail")
	if diff := s.BudgetRemaining1h - 0.9; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("budget remaining = %v, want 0.9", s.BudgetRemaining1h)
	}
}

// TestSLOEngineZeroTolerance: objective 1 means any bad event empties the
// budget and the "burn rate" is the raw bad count.
func TestSLOEngineZeroTolerance(t *testing.T) {
	clock := newSLOClock()
	e := NewSLOEngine(clock.Now)
	e.Declare(SLOConfig{Name: "integrity", Objective: 1})

	e.Record("integrity", 10000, 0)
	s := findSLO(t, e.Snapshot(), "integrity")
	if s.BudgetRemaining1h != 1 || s.BurnRate5m != 0 {
		t.Fatalf("clean zero-tolerance: %+v", s)
	}
	e.Record("integrity", 0, 2)
	s = findSLO(t, e.Snapshot(), "integrity")
	if s.BudgetRemaining1h != 0 {
		t.Fatalf("one bad event must empty a zero-tolerance budget: %+v", s)
	}
	if s.BurnRate5m != 2 {
		t.Fatalf("zero-tolerance burn should be the raw bad count: %v", s.BurnRate5m)
	}
}

// TestSLOHandler: /debug/slo serves the snapshot as JSON; nil engine and
// unknown names degrade cleanly.
func TestSLOHandler(t *testing.T) {
	clock := newSLOClock()
	e := NewSLOEngine(clock.Now)
	e.Declare(SLOConfig{Name: "avail", Objective: 0.99, Description: "d"})
	e.Record("avail", 90, 10)
	e.Record("no-such-slo", 1, 1) // dropped, never panics

	rr := httptest.NewRecorder()
	e.Handler()(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	var snap SLOSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	s := findSLO(t, snap, "avail")
	// 10% bad against a 1% budget: burn rate 10.
	if s.BurnRate1h < 9.99 || s.BurnRate1h > 10.01 {
		t.Fatalf("burn = %v, want 10", s.BurnRate1h)
	}

	var nilEngine *SLOEngine
	rr = httptest.NewRecorder()
	nilEngine.Handler()(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil || snap.SLOs == nil {
		t.Fatalf("nil engine handler: err=%v body=%s", err, rr.Body.String())
	}
}
