package hpop

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"hpop/internal/nat"
)

// Lifecycle errors.
var (
	ErrAlreadyStarted = errors.New("hpop: already started")
	ErrNotStarted     = errors.New("hpop: not started")
	ErrDuplicateName  = errors.New("hpop: duplicate service name")
)

// Config describes one appliance.
type Config struct {
	// Name labels this HPoP ("smith-family").
	Name string
	// ListenAddr is the HTTP bind address; empty means an ephemeral
	// 127.0.0.1 port (tests, examples).
	ListenAddr string
	// NAT describes the network situation for reachability planning.
	NAT nat.Endpoint
}

// ServiceContext is handed to services at start.
type ServiceContext struct {
	// Mux is the appliance's HTTP mux; services attach handlers under their
	// own prefixes ("/dav/", "/nocdn/", ...).
	Mux *http.ServeMux
	// Metrics is the shared metrics registry.
	Metrics *Metrics
	// Tracer is the shared request tracer (span ring buffer).
	Tracer *Tracer
	// Events is the appliance event log.
	Events *EventLog
	// Health is the shared peer-health registry (breaker state, audit
	// flags, latency quantiles), served at /debug/health.
	Health *HealthRegistry
	// Config is the appliance configuration.
	Config Config
}

// Service is a pluggable HPoP capability. The HPoP is "an extensible and
// configurable platform that can also run myriad mundane services".
type Service interface {
	// Name identifies the service uniquely within one HPoP.
	Name() string
	// Start attaches the service; it must not block.
	Start(ctx *ServiceContext) error
	// Stop releases service resources.
	Stop() error
}

// EventLog is a bounded in-memory log of appliance events.
type EventLog struct {
	mu     sync.Mutex
	events []Event
	max    int
	now    func() time.Time
}

// Event is one log entry.
type Event struct {
	At      time.Time `json:"at"`
	Service string    `json:"service"`
	Message string    `json:"message"`
}

// NewEventLog creates a log bounded to max entries (default 1024).
func NewEventLog(max int, now func() time.Time) *EventLog {
	if max <= 0 {
		max = 1024
	}
	if now == nil {
		now = time.Now
	}
	return &EventLog{max: max, now: now}
}

// Logf appends a formatted event.
func (l *EventLog) Logf(service, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{
		At:      l.now(),
		Service: service,
		Message: fmt.Sprintf(format, args...),
	})
	if len(l.events) > l.max {
		l.events = l.events[len(l.events)-l.max:]
	}
}

// Recent returns up to n most recent events, oldest first.
func (l *EventLog) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.events) {
		n = len(l.events)
	}
	out := make([]Event, n)
	copy(out, l.events[len(l.events)-n:])
	return out
}

// HPoP is the appliance.
type HPoP struct {
	cfg     Config
	metrics *Metrics
	tracer  *Tracer
	events  *EventLog
	health  *HealthRegistry

	mu       sync.Mutex
	services []Service
	started  bool
	mux      *http.ServeMux
	server   *http.Server
	listener net.Listener
}

// New creates an appliance from config.
func New(cfg Config) *HPoP {
	if cfg.Name == "" {
		cfg.Name = "hpop"
	}
	h := &HPoP{
		cfg:     cfg,
		metrics: NewMetrics(),
		tracer:  NewTracer(0),
		events:  NewEventLog(0, nil),
		health:  NewHealthRegistry(BreakerConfig{}),
		mux:     http.NewServeMux(),
	}
	h.health.SetMetrics(h.metrics)
	return h
}

// Metrics returns the shared registry.
func (h *HPoP) Metrics() *Metrics { return h.metrics }

// Tracer returns the shared request tracer.
func (h *HPoP) Tracer() *Tracer { return h.tracer }

// Events returns the appliance event log.
func (h *HPoP) Events() *EventLog { return h.events }

// HealthRegistry returns the shared peer-health registry.
func (h *HPoP) HealthRegistry() *HealthRegistry { return h.health }

// Health reports per-service readiness, as served by /healthz. Useful for
// wiring the same view onto a second listener (see cmd/hpopd -debug-addr).
func (h *HPoP) Health() map[string]error { return h.healthSnapshot() }

// Name returns the appliance label.
func (h *HPoP) Name() string { return h.cfg.Name }

// Register adds a service. All registrations must happen before Start.
func (h *HPoP) Register(s Service) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started {
		return ErrAlreadyStarted
	}
	for _, existing := range h.services {
		if existing.Name() == s.Name() {
			return ErrDuplicateName
		}
	}
	h.services = append(h.services, s)
	return nil
}

// Start brings up all services and the HTTP front end. Services start in
// registration order; a failure stops already-started services and returns
// the error.
func (h *HPoP) Start() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started {
		return ErrAlreadyStarted
	}
	ctx := &ServiceContext{
		Mux:     h.mux,
		Metrics: h.metrics,
		Tracer:  h.tracer,
		Events:  h.events,
		Health:  h.health,
		Config:  h.cfg,
	}
	for i, s := range h.services {
		if err := s.Start(ctx); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = h.services[j].Stop()
			}
			return fmt.Errorf("start service %s: %w", s.Name(), err)
		}
		h.events.Logf(s.Name(), "started")
	}
	h.mux.HandleFunc("/status", h.handleStatus)
	h.mux.HandleFunc("/metrics", MetricsHandler(h.metrics))
	h.mux.HandleFunc("/healthz", HealthHandler(h.cfg.Name, h.healthSnapshot))
	h.mux.HandleFunc("/debug/traces", TracesHandler(h.tracer))
	h.mux.HandleFunc("/debug/trace", TraceHandler(h.tracer))
	h.mux.HandleFunc("/debug/health", h.health.Handler())

	addr := h.cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		for j := len(h.services) - 1; j >= 0; j-- {
			_ = h.services[j].Stop()
		}
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	h.listener = ln
	h.server = &http.Server{Handler: h.mux}
	go h.server.Serve(ln) // Serve returns on Close; error intentionally dropped
	h.started = true
	h.events.Logf("hpop", "online at %s", ln.Addr())
	return nil
}

// Stop shuts down the HTTP server and all services (reverse order).
func (h *HPoP) Stop(ctx context.Context) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.started {
		return ErrNotStarted
	}
	var firstErr error
	if err := h.server.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = err
	}
	for i := len(h.services) - 1; i >= 0; i-- {
		if err := h.services[i].Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
		h.events.Logf(h.services[i].Name(), "stopped")
	}
	h.started = false
	return firstErr
}

// URL returns the appliance's base URL ("http://127.0.0.1:PORT"). Only valid
// after Start.
func (h *HPoP) URL() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.listener == nil {
		return ""
	}
	return "http://" + h.listener.Addr().String()
}

// PlanReachability applies §III's traversal ladder for a client with the
// given NAT situation.
func (h *HPoP) PlanReachability(client nat.Endpoint) nat.Plan {
	return nat.PlanTraversal(h.cfg.NAT, client)
}

// healthSnapshot reports per-service readiness: services implementing
// HealthChecker answer for themselves; the rest are healthy by virtue of
// having started (Start rolls back on any failure, so a serving appliance
// only hosts started services).
func (h *HPoP) healthSnapshot() map[string]error {
	h.mu.Lock()
	services := append([]Service(nil), h.services...)
	h.mu.Unlock()
	out := make(map[string]error, len(services))
	for _, s := range services {
		if hc, ok := s.(HealthChecker); ok {
			out[s.Name()] = hc.Healthy()
		} else {
			out[s.Name()] = nil
		}
	}
	return out
}

// statusResponse is the /status JSON shape.
type statusResponse struct {
	Name     string             `json:"name"`
	Services []string           `json:"services"`
	Metrics  map[string]float64 `json:"metrics"`
	Events   []Event            `json:"recentEvents"`
}

func (h *HPoP) handleStatus(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	names := make([]string, 0, len(h.services))
	for _, s := range h.services {
		names = append(names, s.Name())
	}
	h.mu.Unlock()
	resp := statusResponse{
		Name:     h.cfg.Name,
		Services: names,
		Metrics:  h.metrics.Snapshot(),
		Events:   h.events.Recent(20),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// FuncService adapts start/stop closures to the Service interface — handy
// for small built-in services ("a contacts server, a calendar server") and
// tests.
type FuncService struct {
	ServiceName string
	OnStart     func(*ServiceContext) error
	OnStop      func() error
}

var _ Service = (*FuncService)(nil)

// Name implements Service.
func (f *FuncService) Name() string { return f.ServiceName }

// Start implements Service.
func (f *FuncService) Start(ctx *ServiceContext) error {
	if f.OnStart == nil {
		return nil
	}
	return f.OnStart(ctx)
}

// Stop implements Service.
func (f *FuncService) Stop() error {
	if f.OnStop == nil {
		return nil
	}
	return f.OnStop()
}
