package hpop

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// ErrBoundsMismatch is returned by Merge/MergeBuckets when the incoming
// buckets were built against different bounds than the receiver's.
var ErrBoundsMismatch = errors.New("hpop: histogram bucket bounds mismatch")

// DefaultBuckets returns the default histogram bucket upper bounds:
// log-spaced (doubling) from 1µs to ~33s, expressed in seconds. They cover
// everything from an in-memory cache hit to a residential peer timing out,
// with samples beyond the last bound landing in the overflow bucket.
func DefaultBuckets() []float64 {
	bounds := make([]float64, 26)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Histogram is a lock-cheap fixed-bucket histogram: bucket counts, the
// total count, and the running sum are all atomics, so Observe on a serving
// hot path costs two atomic adds and one CAS — no locks, no allocation.
// Like Metrics, every method is nil-receiver safe.
//
// Buckets are upper bounds (a sample v lands in the first bucket whose
// bound is >= v); samples above the last bound land in an implicit
// overflow (+Inf) bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	total  atomic.Uint64
	sum    atomicFloat
}

// NewHistogram creates a histogram with the given bucket upper bounds
// (sorted copies are taken; nil or empty means DefaultBuckets()).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets()
	} else {
		bounds = append([]float64(nil), bounds...)
		sort.Float64s(bounds)
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Bounds returns the bucket upper bounds (shared slice; do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.total.Add(1)
	h.sum.add(v)
}

// ObserveSince records the seconds elapsed since start — the common latency
// instrumentation call. No-op on a nil histogram.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the running sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return h.sum.load() / float64(n)
}

// bucketSnapshot copies the bucket counters (index len(bounds) is the
// overflow bucket) so quantile math runs on one consistent-enough view.
func (h *Histogram) bucketSnapshot() []uint64 {
	snap := make([]uint64, len(h.counts))
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
	}
	return snap
}

// BucketCounts returns a copy of the bucket counters; the last element is
// the overflow (+Inf) bucket, so len == len(Bounds())+1. Nil-safe.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	return h.bucketSnapshot()
}

// boundsEqual reports whether two bound slices describe the same buckets.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge adds every bucket, the total, and the sum of other into h. The two
// histograms must have identical bounds (ErrBoundsMismatch otherwise):
// merging histograms with different buckets would silently redistribute
// samples, so incompatibility is an error, never a best-effort remap.
// Merging is commutative and associative — merging K peers' histograms is
// bucket-exact equivalent to one histogram observing the union stream.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	if !boundsEqual(h.bounds, other.bounds) {
		return ErrBoundsMismatch
	}
	return h.MergeBuckets(other.bucketSnapshot(), other.sum.load())
}

// MergeBuckets folds raw bucket-count deltas (len(bounds)+1, overflow last)
// and a sum delta into h. This is the aggregation primitive TelemetryReport
// deltas apply through; counts are added bucket-by-bucket so the merged
// histogram is exactly what observing those samples locally would produce.
func (h *Histogram) MergeBuckets(counts []uint64, sum float64) error {
	if h == nil {
		return nil
	}
	if len(counts) != len(h.counts) {
		return fmt.Errorf("%w: got %d buckets, want %d", ErrBoundsMismatch, len(counts), len(h.counts))
	}
	var added uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		h.counts[i].Add(c)
		added += c
	}
	h.total.Add(added)
	h.sum.add(sum)
	return nil
}

// Quantile estimates the p-quantile (p in [0,1], clamped) by linear
// interpolation inside the owning bucket. It returns 0 when the histogram
// is empty; samples in the overflow bucket report the last bound (the
// histogram cannot see beyond it). Quantile is monotonically non-decreasing
// in p.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	snap := h.bucketSnapshot()
	var total uint64
	for _, c := range snap {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := p * float64(total)
	var cum uint64
	for i, c := range snap {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) >= target {
			if i == len(h.bounds) {
				// Overflow bucket: the upper edge is unknown, clamp to the
				// last finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (target - float64(cum-c)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}
