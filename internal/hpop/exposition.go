package hpop

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// WriteExposition renders the registry in the stable text exposition format
// served at /metrics. Output is fully deterministic for a given metric
// state: counters, then gauges, then histograms, each sorted by name.
//
//	# TYPE nocdn.loader.retries counter
//	nocdn.loader.retries 2
//	# TYPE nocdn.loader.fetch_seconds histogram
//	nocdn.loader.fetch_seconds{le="0.001"} 4
//	nocdn.loader.fetch_seconds{le="+Inf"} 9
//	nocdn.loader.fetch_seconds.sum 0.0123
//	nocdn.loader.fetch_seconds.count 9
//	nocdn.loader.fetch_seconds.p50 0.0004
//	nocdn.loader.fetch_seconds.p99 0.0038
func (m *Metrics) WriteExposition(w io.Writer) error {
	if m == nil {
		return nil
	}
	writeKind := func(vals map[string]float64, kind string) error {
		names := make([]string, 0, len(vals))
		for k := range vals {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n",
				name, kind, name, formatFloat(vals[name])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeKind(m.counters.snapshot(), "counter"); err != nil {
		return err
	}
	if err := writeKind(m.gauges.snapshot(), "gauge"); err != nil {
		return err
	}

	hists := m.Histograms()
	names := make([]string, 0, len(hists))
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		bounds := h.Bounds()
		snap := h.bucketSnapshot()
		var cum uint64
		for i, bound := range bounds {
			cum += snap[i]
			if _, err := fmt.Fprintf(w, "%s{le=%q} %d\n", name, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += snap[len(bounds)]
		if _, err := fmt.Fprintf(w, "%s{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s.sum %s\n%s.count %d\n%s.p50 %s\n%s.p99 %s\n",
			name, formatFloat(h.Sum()), name, h.Count(),
			name, formatFloat(h.Quantile(0.5)), name, formatFloat(h.Quantile(0.99))); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a metric value with the shortest round-tripping
// representation, so exposition output is byte-stable.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves the text exposition of m at GET /metrics. Each
// scrape first refreshes the Go runtime health metrics (goroutines, heap
// bytes, GC pause histogram), so every daemon exports them for free. The
// scrape itself is timed into the hpop.scrape.duration_seconds histogram —
// the self-metric that tells an operator when a registry has grown so large
// that scraping it is the bottleneck (the cost shows up from the second
// scrape onward, since the sample is recorded after the write).
func MetricsHandler(m *Metrics) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.SampleRuntime()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		m.WriteExposition(w)
		m.Histogram("hpop.scrape.duration_seconds").ObserveSince(start)
	}
}

// TracesHandler serves the tracer's recent spans as JSON at
// GET /debug/traces. The optional ?n= query bounds how many spans return
// (default 256, capped at the ring size); ?service= keeps only spans from
// that service, and ?min_ms= keeps only spans at least that long — without
// the filters the raw ring is unusable at fleet scale. Filters apply before
// the n-limit, so "the slowest recent nocdn-peer spans" is one query.
func TracesHandler(t *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		service := r.URL.Query().Get("service")
		minMS := 0.0
		if q := r.URL.Query().Get("min_ms"); q != "" {
			v, err := strconv.ParseFloat(q, 64)
			if err != nil || v < 0 {
				http.Error(w, "bad min_ms", http.StatusBadRequest)
				return
			}
			minMS = v
		}
		fetch := n
		if service != "" || minMS > 0 {
			fetch = 0 // scan the whole ring, then filter and tail-limit
		}
		spans := t.Recent(fetch)
		if service != "" || minMS > 0 {
			kept := spans[:0]
			for _, s := range spans {
				if service != "" && s.Service != service {
					continue
				}
				if s.DurationMS < minMS {
					continue
				}
				kept = append(kept, s)
			}
			spans = kept
			if len(spans) > n {
				spans = spans[len(spans)-n:] // newest n, matching Recent's contract
			}
		}
		if spans == nil {
			spans = []SpanRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(map[string]any{"spans": spans}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// TraceHandler serves all local spans of one distributed trace as JSON at
// GET /debug/trace?id=TRACEID (32 hex chars). The response is
// {"traceId": ..., "spans": [...]}; spans from other processes must be
// fetched from their own daemons and stitched (see StitchTrace and the
// hpopbench trace-join mode).
func TraceHandler(t *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := ParseTraceID(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "want ?id=<32 hex chars>: "+err.Error(), http.StatusBadRequest)
			return
		}
		spans := t.TraceSpans(id)
		if spans == nil {
			spans = []SpanRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(map[string]any{
			"traceId": id.String(),
			"spans":   spans,
		}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// HealthChecker is optionally implemented by services that can report
// readiness beyond "Start returned nil". A nil return means healthy.
type HealthChecker interface {
	Healthy() error
}

// HealthResponse is the /healthz JSON shape.
type HealthResponse struct {
	Name   string `json:"name"`
	Status string `json:"status"` // "ok" or "degraded"
	// Services maps service name -> "ok" or the failure message.
	Services map[string]string `json:"services"`
}

// HealthHandler serves per-service readiness at GET /healthz: 200 with
// status "ok" when every service reports healthy, 503 with "degraded" (and
// the failing services' errors) otherwise. The health callback returns
// service name -> error (nil = healthy).
func HealthHandler(name string, health func() map[string]error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		resp := HealthResponse{Name: name, Status: "ok", Services: map[string]string{}}
		if health != nil {
			for svc, err := range health() {
				if err != nil {
					resp.Status = "degraded"
					resp.Services[svc] = err.Error()
				} else {
					resp.Services[svc] = "ok"
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if resp.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(resp)
	}
}

// DebugMux builds the opt-in debug surface both daemons serve behind
// -debug-addr: the observability endpoints plus net/http/pprof. It is kept
// off the appliance's public mux so profiling is never reachable unless
// explicitly enabled. An optional HealthRegistry backs /debug/health; the
// endpoint is always mounted (a nil registry serves an empty peer list).
func DebugMux(name string, m *Metrics, t *Tracer, health func() map[string]error, reg ...*HealthRegistry) *http.ServeMux {
	var hr *HealthRegistry
	if len(reg) > 0 {
		hr = reg[0]
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", MetricsHandler(m))
	mux.HandleFunc("/healthz", HealthHandler(name, health))
	mux.HandleFunc("/debug/traces", TracesHandler(t))
	mux.HandleFunc("/debug/trace", TraceHandler(t))
	mux.HandleFunc("/debug/health", hr.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
