package hpop

import (
	"container/heap"
	"sort"
	"strings"
	"sync"
)

// TelemetryReport is one source's compact delta snapshot: counter and
// histogram-bucket deltas accumulated since the last acknowledged report,
// plus absolute gauge values and a drained hot-key sketch. Reports are
// sequence-numbered per source; a retried report carries the same Seq and
// identical payload, so the aggregator can apply each sequence exactly once
// no matter how many times the network delivers it.
type TelemetryReport struct {
	Source     string                    `json:"source"`
	Seq        uint64                    `json:"seq"`
	Counters   map[string]float64        `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramDelta `json:"histograms,omitempty"`
	HotKeys    map[string]uint64         `json:"hotKeys,omitempty"`
}

// HistogramDelta is a histogram's bucket-count deltas since the last ack.
// Counts has len(Bounds)+1 entries (overflow last); Sum is the sample-sum
// delta. Shipping raw bucket deltas keeps fleet merging bucket-exact:
// Histogram.MergeBuckets of K peers' deltas equals observing the union
// stream locally.
type HistogramDelta struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
}

// histBase is the per-histogram baseline a reporter diffs against.
type histBase struct {
	counts []uint64
	sum    float64
}

// telemetryBase is the last-acknowledged snapshot of the underlying
// registry. Deltas are computed against it, and it only advances when the
// aggregator acknowledges the report built from it.
type telemetryBase struct {
	counters map[string]float64
	hists    map[string]histBase
}

// TelemetryReporter builds idempotent delta reports from a Metrics registry.
//
// The protocol is build-once/ack-to-commit: NextReport computes the delta
// against the acked baseline, assigns the next sequence number, and pins the
// report as pending. Until Ack is called with that sequence, every
// NextReport call returns the identical pending report — so retries resend
// the same payload and a report the aggregator already applied is
// recognizable (and droppable) by its sequence number alone. Ack commits the
// baseline; the next report then carries everything observed since,
// including anything that accumulated while the origin was dark. Nothing is
// ever lost, only batched.
type TelemetryReporter struct {
	mu          sync.Mutex
	source      string
	m           *Metrics
	seq         uint64
	pending     *TelemetryReport
	pendingBase *telemetryBase
	base        telemetryBase
	hot         *SpaceSaving
	exclude     []string
}

// NewTelemetryReporter creates a reporter for the source id over registry m.
// hotKeys bounds the per-interval hot-key sketch (<= 0 disables hot-key
// tracking).
func NewTelemetryReporter(source string, m *Metrics, hotKeys int) *TelemetryReporter {
	r := &TelemetryReporter{
		source: source,
		m:      m,
		base:   telemetryBase{counters: map[string]float64{}, hists: map[string]histBase{}},
	}
	if hotKeys > 0 {
		r.hot = NewSpaceSaving(hotKeys)
	}
	return r
}

// ExcludePrefix excludes metric names matching any of the prefixes from
// reports. The shipping path uses this for its own bookkeeping counters
// (reports sent, failures): without the exclusion every successful ship
// would change the registry and re-arm the next report, so an otherwise
// idle peer could never fall silent.
func (r *TelemetryReporter) ExcludePrefix(prefixes ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.exclude = append(r.exclude, prefixes...)
}

// excluded reports whether a metric name is filtered; r.mu must be held.
func (r *TelemetryReporter) excluded(name string) bool {
	for _, p := range r.exclude {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// ObserveKey charges weight to a hot key (a served page/object path). The
// sketch drains into the next built report. Nil-safe.
func (r *TelemetryReporter) ObserveKey(key string, weight uint64) {
	if r == nil || r.hot == nil || key == "" {
		return
	}
	r.hot.Add(key, weight)
}

// Seq returns the sequence number of the most recently built report.
func (r *TelemetryReporter) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Pending reports whether a built report is awaiting acknowledgment.
func (r *TelemetryReporter) Pending() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending != nil
}

// NextReport returns the report to ship now: the still-unacknowledged
// pending report if there is one (identical payload, same Seq — this is
// what makes retries idempotent), otherwise a freshly built delta against
// the acked baseline. Returns nil when there is nothing to report (no
// pending report and no deltas since the last ack), so idle peers stay
// silent. Callers must treat the returned report as immutable.
func (r *TelemetryReporter) NextReport() *TelemetryReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending != nil {
		return r.pending
	}

	counters := r.m.counters.snapshot()
	gauges := r.m.gauges.snapshot()
	hists := r.m.Histograms()

	rep := &TelemetryReport{Source: r.source}
	for name, v := range counters {
		if r.excluded(name) {
			continue
		}
		if delta := v - r.base.counters[name]; delta != 0 {
			if rep.Counters == nil {
				rep.Counters = map[string]float64{}
			}
			rep.Counters[name] = delta
		}
	}
	newHistBase := make(map[string]histBase, len(hists))
	for name, h := range hists {
		if r.excluded(name) {
			continue
		}
		counts := h.BucketCounts()
		sum := h.Sum()
		newHistBase[name] = histBase{counts: counts, sum: sum}
		prev := r.base.hists[name]
		delta := HistogramDelta{Bounds: h.Bounds(), Counts: make([]uint64, len(counts)), Sum: sum - prev.sum}
		any := false
		for i, c := range counts {
			var p uint64
			if i < len(prev.counts) {
				p = prev.counts[i]
			}
			if c >= p {
				delta.Counts[i] = c - p
			}
			if delta.Counts[i] != 0 {
				any = true
			}
		}
		if any {
			if rep.Histograms == nil {
				rep.Histograms = map[string]HistogramDelta{}
			}
			rep.Histograms[name] = delta
		}
	}
	if r.hot != nil {
		if hot := r.hot.Drain(); len(hot) > 0 {
			rep.HotKeys = hot
		}
	}
	if len(rep.Counters) == 0 && len(rep.Histograms) == 0 && len(rep.HotKeys) == 0 {
		// Nothing happened since the last ack; don't burn a sequence
		// number on an empty report. (Gauges alone don't warrant a send.)
		return nil
	}
	for name, v := range gauges {
		if r.excluded(name) {
			continue
		}
		if rep.Gauges == nil {
			rep.Gauges = map[string]float64{}
		}
		rep.Gauges[name] = v
	}
	r.seq++
	rep.Seq = r.seq
	r.pending = rep
	r.pendingBase = &telemetryBase{counters: counters, hists: newHistBase}
	return rep
}

// Ack acknowledges the pending report. If seq covers the pending sequence,
// the baseline advances and the next NextReport builds a fresh delta.
// Returns true when an ack was consumed. Stale acks (from an earlier,
// already-superseded report) are ignored.
func (r *TelemetryReporter) Ack(seq uint64) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending == nil || seq < r.pending.Seq {
		return false
	}
	r.base = *r.pendingBase
	r.pending = nil
	r.pendingBase = nil
	return true
}

// KeyCount is one entry of a SpaceSaving sketch: an estimated count and the
// maximum possible overestimation inherited from evictions.
type KeyCount struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// SpaceSaving is the Metwally et al. space-saving heavy-hitter sketch: at
// most cap keys are tracked; when a new key arrives at capacity it evicts
// the minimum-count entry and inherits its count (recorded as the new
// entry's error bound). Any key whose true count exceeds N/cap is guaranteed
// to be present. Operations are O(log cap) via a min-heap, so the origin can
// absorb hot-key streams from 100k reports per interval without scanning.
type SpaceSaving struct {
	mu    sync.Mutex
	cap   int
	heap  ssHeap
	index map[string]*ssEntry
}

type ssEntry struct {
	key   string
	count uint64
	err   uint64
	idx   int
}

// ssHeap is a min-heap of entries by count.
type ssHeap []*ssEntry

func (h ssHeap) Len() int            { return len(h) }
func (h ssHeap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *ssHeap) Push(x interface{}) { e := x.(*ssEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *ssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewSpaceSaving creates a sketch tracking at most capacity keys
// (minimum 1).
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{cap: capacity, index: make(map[string]*ssEntry, capacity)}
}

// Add charges weight to key. Nil-safe.
func (s *SpaceSaving) Add(key string, weight uint64) {
	if s == nil || key == "" || weight == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[key]; ok {
		e.count += weight
		heap.Fix(&s.heap, e.idx)
		return
	}
	if len(s.heap) < s.cap {
		e := &ssEntry{key: key, count: weight}
		heap.Push(&s.heap, e)
		s.index[key] = e
		return
	}
	// At capacity: replace the minimum, inheriting its count as the error
	// bound (classic space-saving eviction).
	min := s.heap[0]
	delete(s.index, min.key)
	min.err = min.count
	min.count += weight
	min.key = key
	s.index[key] = min
	heap.Fix(&s.heap, 0)
}

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heap)
}

// Top returns the k highest-count entries, sorted by count descending (ties
// by key ascending, for deterministic output). k <= 0 returns every entry.
func (s *SpaceSaving) Top(k int) []KeyCount {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]KeyCount, 0, len(s.heap))
	for _, e := range s.heap {
		out = append(out, KeyCount{Key: e.key, Count: e.count, Err: e.err})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Drain returns every tracked key with its count and resets the sketch —
// the per-report hot-key harvest on the peer side.
func (s *SpaceSaving) Drain() map[string]uint64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.heap) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(s.heap))
	for _, e := range s.heap {
		out[e.key] = e.count
	}
	s.heap = s.heap[:0]
	s.index = make(map[string]*ssEntry, s.cap)
	return out
}
