// Package hpop implements the home point of presence appliance core: a
// service registry with lifecycle management, an HTTP front end that hosts
// service handlers, a metrics registry, an event log, and the reachability
// planner that applies §III's NAT-traversal ladder (UPnP, then STUN, then
// TURN relaying).
//
// Services (the data attic, a NoCDN peer, a DCol waypoint, the
// Internet@home cache) implement the Service interface and are registered
// on one HPoP, which is "operational as long as there is power and online as
// long as there is Internet connectivity".
package hpop

import (
	"sort"
	"sync"
)

// Metrics is a simple thread-safe counter/gauge registry shared by services.
// All methods are nil-receiver safe: instrumented code paths (loader
// retries, flush backoff, replicator giveups) never need to guard their
// optional Metrics field.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
	}
}

// Add increments a counter by delta. No-op on a nil registry.
func (m *Metrics) Add(name string, delta float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[name] += delta
}

// Inc increments a counter by one. No-op on a nil registry.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Counter returns a counter's current value (zero on a nil registry).
func (m *Metrics) Counter(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Set sets a gauge. No-op on a nil registry.
func (m *Metrics) Set(name string, value float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = value
}

// Gauge returns a gauge's current value (zero on a nil registry).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Snapshot returns all metrics as a name->value map (counters and gauges
// merged; gauge names win on collision).
func (m *Metrics) Snapshot() map[string]float64 {
	if m == nil {
		return map[string]float64{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.counters)+len(m.gauges))
	for k, v := range m.counters {
		out[k] = v
	}
	for k, v := range m.gauges {
		out[k] = v
	}
	return out
}

// Names returns all metric names, sorted (stable output for status pages).
func (m *Metrics) Names() []string {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
