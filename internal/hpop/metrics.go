package hpop

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a thread-safe registry of counters, gauges, and latency
// histograms shared by services. All methods are nil-receiver safe:
// instrumented code paths (loader retries, flush backoff, replicator
// giveups, proxy latency) never need to guard their optional Metrics field.
//
// Counters and gauges are sharded by name hash and stored as atomic cells,
// so hot-path increments from the loader/peer fan-out never serialize on a
// single registry lock: a shard's read lock is taken only to find the cell,
// and the update itself is a lock-free CAS.
type Metrics struct {
	counters shardedFloats
	gauges   shardedFloats

	histMu sync.RWMutex
	hists  map[string]*Histogram

	// gcSeen is the GC-cycle high-water mark SampleRuntime has drained
	// pause samples up to (see runtime.go).
	gcSeen atomic.Uint32
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{}
}

// Add increments a counter by delta. No-op on a nil registry.
func (m *Metrics) Add(name string, delta float64) {
	if m == nil {
		return
	}
	m.counters.cell(name).add(delta)
}

// Inc increments a counter by one. No-op on a nil registry.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Counter returns a counter's current value (zero on a nil registry).
func (m *Metrics) Counter(name string) float64 {
	if m == nil {
		return 0
	}
	return m.counters.load(name)
}

// Set sets a gauge. No-op on a nil registry.
func (m *Metrics) Set(name string, value float64) {
	if m == nil {
		return
	}
	m.gauges.cell(name).store(value)
}

// Gauge returns a gauge's current value (zero on a nil registry).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	return m.gauges.load(name)
}

// Histogram returns the named histogram, creating it with DefaultBuckets on
// first use. Returns nil on a nil registry (and *Histogram methods are
// nil-receiver safe, so callers never need to check).
func (m *Metrics) Histogram(name string) *Histogram {
	return m.HistogramWithBounds(name, nil)
}

// HistogramWithBounds returns the named histogram, creating it with the
// given bucket upper bounds on first use (nil bounds means DefaultBuckets).
// Bounds of an already-registered histogram are never changed.
func (m *Metrics) HistogramWithBounds(name string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.histMu.RLock()
	h := m.hists[name]
	m.histMu.RUnlock()
	if h != nil {
		return h
	}
	m.histMu.Lock()
	defer m.histMu.Unlock()
	if h = m.hists[name]; h != nil {
		return h
	}
	if m.hists == nil {
		m.hists = make(map[string]*Histogram)
	}
	h = NewHistogram(bounds)
	m.hists[name] = h
	return h
}

// Observe records one sample in the named histogram. No-op on a nil
// registry.
func (m *Metrics) Observe(name string, v float64) {
	m.Histogram(name).Observe(v)
}

// Histograms returns a snapshot of the registered histograms (name ->
// histogram; the histograms themselves are live, not copies).
func (m *Metrics) Histograms() map[string]*Histogram {
	if m == nil {
		return map[string]*Histogram{}
	}
	m.histMu.RLock()
	defer m.histMu.RUnlock()
	out := make(map[string]*Histogram, len(m.hists))
	for k, v := range m.hists {
		out[k] = v
	}
	return out
}

// Snapshot returns counters and gauges as a name->value map. A name used as
// both a counter and a gauge is reported under "counter:NAME" and
// "gauge:NAME" so neither silently shadows the other; non-colliding names
// stay bare.
func (m *Metrics) Snapshot() map[string]float64 {
	if m == nil {
		return map[string]float64{}
	}
	counters := m.counters.snapshot()
	gauges := m.gauges.snapshot()
	out := make(map[string]float64, len(counters)+len(gauges))
	for k, v := range counters {
		if _, dup := gauges[k]; dup {
			out["counter:"+k] = v
		} else {
			out[k] = v
		}
	}
	for k, v := range gauges {
		if _, dup := counters[k]; dup {
			out["gauge:"+k] = v
		} else {
			out[k] = v
		}
	}
	return out
}

// Names returns all counter and gauge names, sorted (stable output for
// status pages). Histogram names are listed by Histograms.
func (m *Metrics) Names() []string {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// metricShards is the shard count for counter/gauge maps; a power of two so
// the shard pick is a mask.
const metricShards = 16

// atomicFloat is a float64 updated lock-free via its IEEE-754 bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// shardedFloats maps names to atomic float cells across independently locked
// shards. The shard lock guards only the map; cell updates are atomic, so
// two goroutines bumping different (or even the same) counter in one shard
// contend only on the brief read lock.
type shardedFloats struct {
	shards [metricShards]struct {
		mu   sync.RWMutex
		vals map[string]*atomicFloat
	}
}

// shardFor hashes name with FNV-1a and masks into the shard array.
func (s *shardedFloats) shardFor(name string) *struct {
	mu   sync.RWMutex
	vals map[string]*atomicFloat
} {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &s.shards[h&(metricShards-1)]
}

// cell returns the named cell, creating it on first use.
func (s *shardedFloats) cell(name string) *atomicFloat {
	sh := s.shardFor(name)
	sh.mu.RLock()
	c := sh.vals[name]
	sh.mu.RUnlock()
	if c != nil {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c = sh.vals[name]; c != nil {
		return c
	}
	if sh.vals == nil {
		sh.vals = make(map[string]*atomicFloat)
	}
	c = &atomicFloat{}
	sh.vals[name] = c
	return c
}

// load returns the named value without creating a cell.
func (s *shardedFloats) load(name string) float64 {
	sh := s.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if c := sh.vals[name]; c != nil {
		return c.load()
	}
	return 0
}

// snapshot copies every shard's values into one map.
func (s *shardedFloats) snapshot() map[string]float64 {
	out := make(map[string]float64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, c := range sh.vals {
			out[k] = c.load()
		}
		sh.mu.RUnlock()
	}
	return out
}
