package hpop

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testBreakerConfig(clk *fakeClock) BreakerConfig {
	return BreakerConfig{
		Window:           4,
		FailureThreshold: 0.5,
		MinSamples:       2,
		Cooldown:         time.Second,
		ProbeBudget:      1,
		ReadmitAfter:     2,
		Now:              clk.now,
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(testBreakerConfig(clk))

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("new breaker state = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}

	// Two failures out of two samples crosses 0.5 with MinSamples 2: open.
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse before cooldown")
	}

	// Cooldown elapses: the next Allow half-opens and grants one probe;
	// the probe budget refuses a second concurrent attempt.
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker must grant a probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown Allow = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("probe budget 1 must refuse a second concurrent probe")
	}

	// A failed probe re-opens immediately.
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}

	// Recover: two consecutive successful probes (ReadmitAfter) close it.
	clk.advance(2 * time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("probe %d refused", i)
		}
		b.Record(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probes = %v, want closed", got)
	}
	// The window resets on close: one stray failure must not trip it.
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("one failure after close reopened the breaker: %v", got)
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	cfg := testBreakerConfig(clk)
	cfg.MinSamples = 4   // so the early failure can't trip a tiny sample
	b := NewBreaker(cfg) // window 4, threshold 0.5

	// One early failure, then enough successes to slide it out: the window
	// must forget old outcomes rather than accumulate forever.
	b.Record(false)
	b.Record(true)
	b.Record(true)
	b.Record(true)
	b.Record(true) // wraps; evicts the slot-0 failure
	rate, samples := b.FailureRate()
	if rate != 0 || samples != 4 {
		t.Fatalf("rate = %v over %d samples, want 0 over 4", rate, samples)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must allow")
	}
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("nil breaker state = %v", got)
	}
}

// TestBreakerRace hammers one breaker from many goroutines under -race.
func TestBreakerRace(t *testing.T) {
	b := NewBreaker(BreakerConfig{Cooldown: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					b.Record(i%3 != 0)
				}
				b.State()
				b.FailureRate()
			}
		}(g)
	}
	wg.Wait()
}

func TestHealthRegistryGatingAndRank(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	cfg := testBreakerConfig(clk)
	m := NewMetrics()
	r := NewHealthRegistry(cfg)
	r.SetMetrics(m)
	r.Register("a")
	r.Register("b")

	// Registration alone exports a closed-state gauge for every peer.
	snap := m.Snapshot()
	for _, id := range []string{"a", "b"} {
		if v, ok := snap["hpop.breaker.state."+id]; !ok || v != 0 {
			t.Fatalf("gauge for %s = %v (present %v), want 0", id, v, ok)
		}
	}

	// Fail peer a until its breaker opens; b stays healthy.
	r.RecordFailure("a")
	r.RecordFailure("a")
	if r.State("a") != BreakerOpen {
		t.Fatalf("a state = %v, want open", r.State("a"))
	}
	if r.Allow("a") {
		t.Fatal("open peer must be refused")
	}
	if !r.Allow("b") {
		t.Fatal("healthy peer must be allowed")
	}
	if r.Healthy("a") || !r.Healthy("b") {
		t.Fatalf("healthy: a=%v b=%v", r.Healthy("a"), r.Healthy("b"))
	}
	if v := m.Snapshot()["hpop.breaker.state.a"]; v != 2 {
		t.Fatalf("open gauge = %v, want 2", v)
	}

	// Rank puts the open peer last, preserving order among equals.
	if got := r.Rank([]string{"a", "b", "c"}); got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Fatalf("rank = %v, want [b c a]", got)
	}

	// Flagged peers sink below everything even with closed breakers.
	r.SetFlagged("b", true)
	if got := r.Rank([]string{"b", "c"}); got[0] != "c" {
		t.Fatalf("rank with flagged b = %v, want c first", got)
	}
	if r.Healthy("b") {
		t.Fatal("flagged peer must not be healthy")
	}

	// Half-open probe cycle re-admits a.
	clk.advance(2 * time.Second)
	for i := 0; i < 2; i++ {
		if !r.Allow("a") {
			t.Fatalf("probe %d refused", i)
		}
		r.RecordSuccess("a", 0.01)
	}
	if !r.Healthy("a") {
		t.Fatal("a must be healthy after probe successes")
	}
	if v := m.Snapshot()["hpop.breaker.state.a"]; v != 0 {
		t.Fatalf("closed gauge = %v, want 0", v)
	}
	if v := m.Snapshot()["hpop.breaker.opens"]; v != 1 {
		t.Fatalf("opens counter = %v, want 1", v)
	}
}

func TestHealthRegistrySnapshotAndHandler(t *testing.T) {
	r := NewHealthRegistry(BreakerConfig{})
	r.RecordSuccess("p1", 0.002)
	r.RecordFailure("p1")
	r.RecordFallback("p1")
	r.ReportSaturation("p1", 0.5)

	snap := r.Snapshot()
	if len(snap.Peers) != 1 {
		t.Fatalf("snapshot peers = %d, want 1", len(snap.Peers))
	}
	p := snap.Peers[0]
	if p.ID != "p1" || p.Successes != 1 || p.Failures != 1 || p.Fallbacks != 1 {
		t.Fatalf("snapshot row = %+v", p)
	}
	if p.Saturation != 0.5 {
		t.Fatalf("saturation = %v", p.Saturation)
	}
	if p.Samples != 3 { // success + failure + fallback all enter the window
		t.Fatalf("samples = %d, want 3", p.Samples)
	}

	rec := httptest.NewRecorder()
	r.Handler()(rec, httptest.NewRequest("GET", "/debug/health", nil))
	var got HealthSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("handler JSON: %v", err)
	}
	if len(got.Peers) != 1 || got.Peers[0].ID != "p1" {
		t.Fatalf("handler snapshot = %+v", got)
	}

	// Nil registry: empty but valid JSON.
	var nilReg *HealthRegistry
	rec = httptest.NewRecorder()
	nilReg.Handler()(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("nil handler JSON: %v", err)
	}
	if len(got.Peers) != 0 {
		t.Fatalf("nil handler peers = %+v", got.Peers)
	}
	// And the rest of the nil-safe surface.
	if !nilReg.Allow("x") || !nilReg.Healthy("x") || nilReg.State("x") != BreakerClosed {
		t.Fatal("nil registry must treat every peer as healthy")
	}
	nilReg.RecordSuccess("x", 0)
	nilReg.RecordFailure("x")
	nilReg.SetFlagged("x", true)
	if got := nilReg.Rank([]string{"b", "a"}); got[0] != "b" {
		t.Fatalf("nil Rank reordered: %v", got)
	}
}

// TestHealthRegistryRace hammers the registry concurrently under -race.
func TestHealthRegistryRace(t *testing.T) {
	r := NewHealthRegistry(BreakerConfig{Cooldown: time.Microsecond})
	r.SetMetrics(NewMetrics())
	ids := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				id := ids[(g+i)%len(ids)]
				if r.Allow(id) {
					if i%4 == 0 {
						r.RecordFailure(id)
					} else {
						r.RecordSuccess(id, 0.001)
					}
				}
				r.Rank(ids)
				r.Snapshot()
				r.ReportSaturation(id, float64(i%10)/10)
			}
		}(g)
	}
	wg.Wait()
}

func TestBreakerProbeDue(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(testBreakerConfig(clk))

	if b.ProbeDue() {
		t.Fatal("closed breaker must not be probe-due")
	}
	b.Record(false)
	b.Record(false) // open
	if b.ProbeDue() {
		t.Fatal("open breaker within cooldown must not be probe-due")
	}
	clk.advance(2 * time.Second)
	if !b.ProbeDue() {
		t.Fatal("open breaker past cooldown must be probe-due")
	}
	// ProbeDue is read-only: the state must still be open, and the next
	// Allow must be the call that half-opens.
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("ProbeDue changed state to %v", got)
	}
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// The granted probe consumed the budget: not due again until recorded.
	if b.ProbeDue() {
		t.Fatal("half-open with exhausted budget must not be probe-due")
	}
	b.Record(true)
	if !b.ProbeDue() {
		t.Fatal("half-open with free budget must be probe-due")
	}
	var nilB *Breaker
	if nilB.ProbeDue() {
		t.Fatal("nil breaker must not be probe-due")
	}
}

func TestHealthRegistryProbeDuePromotesInRank(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	cfg := testBreakerConfig(clk)
	r := NewHealthRegistry(cfg)

	r.RecordSuccess("steady", 0.01)
	r.RecordFailure("flaky")
	r.RecordFailure("flaky") // open
	if got := r.Rank([]string{"flaky", "steady"}); got[0] != "steady" {
		t.Fatalf("open-within-cooldown peer ranked first: %v", got)
	}
	if r.ProbeDue("flaky") {
		t.Fatal("flaky probe-due before cooldown")
	}
	clk.advance(2 * time.Second)
	if !r.ProbeDue("flaky") {
		t.Fatal("flaky not probe-due after cooldown")
	}
	// The probe-due peer is promoted so real traffic canaries it.
	if got := r.Rank([]string{"steady", "flaky"}); got[0] != "flaky" {
		t.Fatalf("probe-due peer not promoted: %v", got)
	}
	// Flagged peers are never promoted.
	r.SetFlagged("flaky", true)
	if r.ProbeDue("flaky") {
		t.Fatal("flagged peer reported probe-due")
	}
	if got := r.Rank([]string{"steady", "flaky"}); got[0] != "steady" {
		t.Fatalf("flagged peer promoted: %v", got)
	}
}
