package hpop

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity bounds the tracer's span ring buffer.
const DefaultTraceCapacity = 2048

// SpanRecord is one completed span as stored in the ring buffer and served
// by /debug/traces. It round-trips through JSON unchanged.
type SpanRecord struct {
	ID         uint64            `json:"id"`
	ParentID   uint64            `json:"parentId,omitempty"`
	Service    string            `json:"service"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationMS float64           `json:"durationMs"`
	Labels     map[string]string `json:"labels,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Tracer records span trees into a bounded ring buffer with per-service
// sampling. Like Metrics, it is nil-receiver safe end to end: a nil Tracer
// returns nil Spans, and every Span method is a no-op on nil — instrumented
// paths never branch on "is tracing on".
//
// A sampling decision is made once per root span; children of a sampled
// root are always recorded, so recorded trees are complete.
type Tracer struct {
	mu     sync.Mutex
	ring   []SpanRecord
	next   int
	filled bool

	rateMu sync.RWMutex
	rates  map[string]float64 // service -> sample rate in [0,1]; absent = 1

	nextID atomic.Uint64
	now    func() time.Time
	rand   func() float64
}

// NewTracer creates a tracer whose ring holds max completed spans
// (<= 0 means DefaultTraceCapacity).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultTraceCapacity
	}
	return &Tracer{
		ring: make([]SpanRecord, max),
		now:  time.Now,
		rand: rand.Float64,
	}
}

// SetClock injects a time source (golden tests).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.now = now
}

// SetRand injects the uniform [0,1) source sampling draws from
// (deterministic tests).
func (t *Tracer) SetRand(r func() float64) {
	if t == nil {
		return
	}
	t.rand = r
}

// SetSampleRate sets the fraction of root spans recorded for a service
// (clamped to [0,1]; services default to 1 — record everything).
func (t *Tracer) SetSampleRate(service string, rate float64) {
	if t == nil {
		return
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.rateMu.Lock()
	defer t.rateMu.Unlock()
	if t.rates == nil {
		t.rates = make(map[string]float64)
	}
	t.rates[service] = rate
}

func (t *Tracer) sampled(service string) bool {
	t.rateMu.RLock()
	rate, ok := t.rates[service]
	t.rateMu.RUnlock()
	if !ok || rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return t.rand() < rate
}

// Start opens a root span for a service operation, or returns nil when the
// service's sampling rate drops it (and on a nil tracer). The returned
// *Span is always safe to use.
func (t *Tracer) Start(service, name string) *Span {
	if t == nil || !t.sampled(service) {
		return nil
	}
	return t.newSpan(service, name, 0)
}

func (t *Tracer) newSpan(service, name string, parent uint64) *Span {
	return &Span{
		t:       t,
		id:      t.nextID.Add(1),
		parent:  parent,
		service: service,
		name:    name,
		start:   t.now(),
	}
}

// record appends one completed span to the ring.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// Recent returns up to n most recently completed spans, oldest first
// (n <= 0 means all). Label maps are copies.
func (t *Tracer) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.filled {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SpanRecord, 0, n)
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		rec := t.ring[(start+i)%len(t.ring)]
		if rec.Labels != nil {
			labels := make(map[string]string, len(rec.Labels))
			for k, v := range rec.Labels {
				labels[k] = v
			}
			rec.Labels = labels
		}
		out = append(out, rec)
	}
	return out
}

// Span is one in-flight operation. A nil *Span (unsampled root, nil tracer)
// absorbs every call.
type Span struct {
	t       *Tracer
	id      uint64
	parent  uint64
	service string
	name    string
	start   time.Time

	mu     sync.Mutex
	labels map[string]string
	errMsg string
	ended  bool
}

// Child opens a sub-span under this span (same service).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.service, name, s.id)
}

// SetLabel attaches a key=value annotation.
func (s *Span) SetLabel(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.labels == nil {
		s.labels = make(map[string]string)
	}
	s.labels[key] = value
}

// SetError marks the span failed. SetError(nil) is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errMsg = err.Error()
}

// End completes the span and commits it to the tracer's ring buffer.
// Calling End twice records once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	labels := s.labels
	errMsg := s.errMsg
	s.mu.Unlock()
	end := s.t.now()
	s.t.record(SpanRecord{
		ID:         s.id,
		ParentID:   s.parent,
		Service:    s.service,
		Name:       s.name,
		Start:      s.start,
		End:        end,
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
		Labels:     labels,
		Error:      errMsg,
	})
}
