package hpop

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity bounds the tracer's span ring buffer.
const DefaultTraceCapacity = 2048

// SpanRecord is one completed span as stored in the ring buffer and served
// by /debug/traces. It round-trips through JSON unchanged.
type SpanRecord struct {
	// TraceID is the 32-hex-char distributed trace this span belongs to;
	// spans recorded in different processes share it when the traceparent
	// header was propagated between them.
	TraceID    string            `json:"traceId,omitempty"`
	ID         uint64            `json:"id"`
	ParentID   uint64            `json:"parentId,omitempty"`
	Service    string            `json:"service"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationMS float64           `json:"durationMs"`
	Labels     map[string]string `json:"labels,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Tracer records span trees into a bounded ring buffer with per-service
// sampling. Like Metrics, it is nil-receiver safe end to end: a nil Tracer
// returns nil Spans, and every Span method is a no-op on nil — instrumented
// paths never branch on "is tracing on".
//
// A sampling decision is made once per root span; children of a sampled
// root are always recorded, so recorded trees are complete.
type Tracer struct {
	mu     sync.Mutex
	ring   []SpanRecord
	next   int
	filled bool

	rateMu sync.RWMutex
	rates  map[string]float64 // service -> sample rate in [0,1]; absent = 1

	nextID atomic.Uint64
	now    func() time.Time
	rand   func() float64
	// id64 supplies randomness for trace IDs and the span-ID base;
	// injectable so tests can pin IDs.
	id64 func() uint64
}

// NewTracer creates a tracer whose ring holds max completed spans
// (<= 0 means DefaultTraceCapacity).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultTraceCapacity
	}
	t := &Tracer{
		ring: make([]SpanRecord, max),
		now:  time.Now,
		rand: rand.Float64,
		id64: rand.Uint64,
	}
	// Span IDs count up from a random 64-bit base, so IDs minted by
	// different processes recording the same distributed trace do not
	// collide — parent links survive cross-process stitching.
	t.nextID.Store(t.id64())
	return t
}

// SetClock injects a time source (golden tests).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.now = now
}

// SetRand injects the uniform [0,1) source sampling draws from
// (deterministic tests).
func (t *Tracer) SetRand(r func() float64) {
	if t == nil {
		return
	}
	t.rand = r
}

// SetSampleRate sets the fraction of root spans recorded for a service
// (clamped to [0,1]; services default to 1 — record everything).
func (t *Tracer) SetSampleRate(service string, rate float64) {
	if t == nil {
		return
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.rateMu.Lock()
	defer t.rateMu.Unlock()
	if t.rates == nil {
		t.rates = make(map[string]float64)
	}
	t.rates[service] = rate
}

func (t *Tracer) sampled(service string) bool {
	t.rateMu.RLock()
	rate, ok := t.rates[service]
	t.rateMu.RUnlock()
	if !ok || rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return t.rand() < rate
}

// Start opens a root span for a service operation, or returns nil when the
// service's sampling rate drops it (and on a nil tracer). The returned
// *Span is always safe to use. The root is assigned a fresh 128-bit trace
// ID; propagate it to other processes with InjectTraceparent.
func (t *Tracer) Start(service, name string) *Span {
	if t == nil || !t.sampled(service) {
		return nil
	}
	return t.newSpan(service, name, t.newTraceID(), 0)
}

// StartRemote opens a span that continues a trace begun in another process
// (the server half of a traceparent hop). With a valid sampled parent the
// span shares the parent's trace ID and links to its span ID; a valid but
// unsampled parent drops the span (honoring the upstream decision); an
// invalid or zero parent — absent or corrupted header — degrades to a fresh
// root exactly like Start, so malformed headers never poison a trace.
func (t *Tracer) StartRemote(service, name string, parent TraceContext) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.Start(service, name)
	}
	if !parent.Sampled {
		return nil
	}
	return t.newSpan(service, name, parent.TraceID, parent.SpanID)
}

// newTraceID mints a random non-zero 128-bit trace ID.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := t.id64(), t.id64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (56 - 8*i))
			id[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return id
}

func (t *Tracer) newSpan(service, name string, trace TraceID, parent uint64) *Span {
	id := t.nextID.Add(1)
	if id == 0 { // the random base wrapped; 0 is reserved for "no parent"
		id = t.nextID.Add(1)
	}
	return &Span{
		t:       t,
		trace:   trace,
		id:      id,
		parent:  parent,
		service: service,
		name:    name,
		start:   t.now(),
	}
}

// record appends one completed span to the ring.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// Recent returns up to n most recently completed spans, oldest first
// (n <= 0 means all). Label maps are copies.
func (t *Tracer) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.filled {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SpanRecord, 0, n)
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		rec := t.ring[(start+i)%len(t.ring)]
		if rec.Labels != nil {
			labels := make(map[string]string, len(rec.Labels))
			for k, v := range rec.Labels {
				labels[k] = v
			}
			rec.Labels = labels
		}
		out = append(out, rec)
	}
	return out
}

// TraceSpans returns this process's completed spans belonging to one
// distributed trace, oldest first. Label maps are copies. It scans the ring,
// so it is a debug-endpoint operation, not a hot path.
func (t *Tracer) TraceSpans(id TraceID) []SpanRecord {
	if t == nil || id.IsZero() {
		return nil
	}
	want := id.String()
	var out []SpanRecord
	for _, rec := range t.Recent(0) {
		if rec.TraceID == want {
			out = append(out, rec)
		}
	}
	return out
}

// SpanNode is one span in a stitched cross-process trace tree.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode
}

// StitchTrace assembles spans — typically gathered from several daemons'
// /debug/trace endpoints — into trees. Duplicate span IDs (the same daemon
// queried twice) collapse to one node; spans whose parent is absent from the
// set (the parent process was not queried, or the parent span has not ended)
// become roots. Roots and children are ordered by start time, ties by ID, so
// output is deterministic for a given span set.
func StitchTrace(spans []SpanRecord) []*SpanNode {
	nodes := make(map[uint64]*SpanNode, len(spans))
	order := make([]*SpanNode, 0, len(spans))
	for _, rec := range spans {
		if _, dup := nodes[rec.ID]; dup {
			continue
		}
		n := &SpanNode{SpanRecord: rec}
		nodes[rec.ID] = n
		order = append(order, n)
	}
	var roots []*SpanNode
	for _, n := range order {
		if parent, ok := nodes[n.ParentID]; ok && n.ParentID != n.ID {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(nodes []*SpanNode) {
		sort.SliceStable(nodes, func(i, j int) bool {
			if !nodes[i].Start.Equal(nodes[j].Start) {
				return nodes[i].Start.Before(nodes[j].Start)
			}
			return nodes[i].ID < nodes[j].ID
		})
	}
	byStart(roots)
	for _, n := range order {
		byStart(n.Children)
	}
	return roots
}

// Span is one in-flight operation. A nil *Span (unsampled root, nil tracer)
// absorbs every call.
type Span struct {
	t       *Tracer
	trace   TraceID
	id      uint64
	parent  uint64
	service string
	name    string
	start   time.Time

	mu     sync.Mutex
	labels map[string]string
	errMsg string
	ended  bool
}

// Child opens a sub-span under this span (same service and trace).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.service, name, s.trace, s.id)
}

// Context returns the span's position in its distributed trace, for
// propagation to another process (see InjectTraceparent). A nil span yields
// the zero (invalid) context, whose Traceparent renders as "".
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.trace, SpanID: s.id, Sampled: true}
}

// SetLabel attaches a key=value annotation.
func (s *Span) SetLabel(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.labels == nil {
		s.labels = make(map[string]string)
	}
	s.labels[key] = value
}

// SetError marks the span failed. SetError(nil) is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errMsg = err.Error()
}

// End completes the span and commits it to the tracer's ring buffer.
// Calling End twice records once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	labels := s.labels
	errMsg := s.errMsg
	s.mu.Unlock()
	end := s.t.now()
	traceID := ""
	if !s.trace.IsZero() {
		traceID = s.trace.String()
	}
	s.t.record(SpanRecord{
		TraceID:    traceID,
		ID:         s.id,
		ParentID:   s.parent,
		Service:    s.service,
		Name:       s.name,
		Start:      s.start,
		End:        end,
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
		Labels:     labels,
		Error:      errMsg,
	})
}
