package hpop

import (
	"runtime"
	"strings"
	"testing"
)

// TestSampleRuntimeHealth checks the Go runtime health satellite: goroutine
// and heap gauges are set, GC pauses land in the histogram exactly once per
// cycle, and the values surface through the /metrics exposition.
func TestSampleRuntimeHealth(t *testing.T) {
	m := NewMetrics()
	runtime.GC() // guarantee at least one completed GC cycle
	m.SampleRuntime()

	if got := m.Gauge(MetricGoroutines); got < 1 {
		t.Errorf("%s = %v, want >= 1", MetricGoroutines, got)
	}
	if got := m.Gauge(MetricHeapBytes); got <= 0 {
		t.Errorf("%s = %v, want > 0", MetricHeapBytes, got)
	}
	h := m.Histogram(MetricGCPauseSeconds)
	first := h.Count()
	if first == 0 {
		t.Errorf("%s empty after a forced GC", MetricGCPauseSeconds)
	}

	// Re-sampling without new GC cycles must not double-observe pauses.
	m.SampleRuntime()
	if again := h.Count(); again != first {
		t.Errorf("pause count changed %d -> %d without a GC", first, again)
	}
	// A new cycle adds exactly one more pause sample.
	runtime.GC()
	m.SampleRuntime()
	if after := h.Count(); after != first+1 {
		t.Errorf("pause count after one GC = %d, want %d", after, first+1)
	}

	var sb strings.Builder
	if err := m.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{MetricGoroutines, MetricHeapBytes, MetricGCPauseSeconds} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s", name)
		}
	}

	// Nil registry is a no-op, like the rest of the metrics API.
	var nilM *Metrics
	nilM.SampleRuntime()
}
