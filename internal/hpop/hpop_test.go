package hpop

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"hpop/internal/nat"
)

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.Add("requests", 1)
	m.Add("requests", 2)
	if got := m.Counter("requests"); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	m.Set("temperature", 42)
	m.Set("temperature", 17)
	if got := m.Gauge("temperature"); got != 17 {
		t.Errorf("gauge = %v, want 17", got)
	}
	snap := m.Snapshot()
	if snap["requests"] != 3 || snap["temperature"] != 17 {
		t.Errorf("snapshot = %v", snap)
	}
	names := m.Names()
	if len(names) != 2 || names[0] != "requests" {
		t.Errorf("names = %v", names)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 10000 {
		t.Errorf("counter = %v, want 10000", got)
	}
}

func TestEventLogBounded(t *testing.T) {
	l := NewEventLog(3, nil)
	for i := 0; i < 5; i++ {
		l.Logf("svc", "event %d", i)
	}
	events := l.Recent(0)
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Message != "event 2" || events[2].Message != "event 4" {
		t.Errorf("kept wrong events: %+v", events)
	}
	two := l.Recent(2)
	if len(two) != 2 || two[1].Message != "event 4" {
		t.Errorf("Recent(2) = %+v", two)
	}
}

func TestRegisterAndLifecycle(t *testing.T) {
	h := New(Config{Name: "test-home"})
	var started, stopped []string
	mk := func(name string) Service {
		return &FuncService{
			ServiceName: name,
			OnStart: func(ctx *ServiceContext) error {
				started = append(started, name)
				ctx.Mux.HandleFunc("/"+name, func(w http.ResponseWriter, r *http.Request) {
					fmt.Fprint(w, name)
				})
				return nil
			},
			OnStop: func() error {
				stopped = append(stopped, name)
				return nil
			},
		}
	}
	if err := h.Register(mk("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := h.Register(mk("beta")); err != nil {
		t.Fatal(err)
	}
	if err := h.Register(mk("alpha")); err != ErrDuplicateName {
		t.Errorf("dup register err = %v", err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop(context.Background())
	if err := h.Start(); err != ErrAlreadyStarted {
		t.Errorf("double start err = %v", err)
	}
	if err := h.Register(mk("late")); err != ErrAlreadyStarted {
		t.Errorf("late register err = %v", err)
	}
	if len(started) != 2 || started[0] != "alpha" {
		t.Errorf("start order = %v", started)
	}

	// The mux serves service handlers.
	resp, err := http.Get(h.URL() + "/beta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("service endpoint status = %d", resp.StatusCode)
	}

	if err := h.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(stopped) != 2 || stopped[0] != "beta" {
		t.Errorf("stop order = %v, want reverse of start", stopped)
	}
	if err := h.Stop(context.Background()); err != ErrNotStarted {
		t.Errorf("double stop err = %v", err)
	}
}

func TestStartFailureRollsBack(t *testing.T) {
	h := New(Config{})
	var stopped []string
	ok := &FuncService{
		ServiceName: "ok",
		OnStop:      func() error { stopped = append(stopped, "ok"); return nil },
	}
	boom := &FuncService{
		ServiceName: "boom",
		OnStart:     func(*ServiceContext) error { return errors.New("kaput") },
	}
	h.Register(ok)
	h.Register(boom)
	err := h.Start()
	if err == nil {
		t.Fatal("Start succeeded despite failing service")
	}
	if len(stopped) != 1 || stopped[0] != "ok" {
		t.Errorf("rollback stops = %v", stopped)
	}
	// The appliance must remain restartable... after removing the bad
	// service it cannot be (services are fixed), but state must be clean:
	if h.URL() != "" {
		t.Error("URL set despite failed start")
	}
}

func TestStatusEndpoint(t *testing.T) {
	h := New(Config{Name: "status-home"})
	h.Register(&FuncService{ServiceName: "svc1"})
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop(context.Background())
	h.Metrics().Add("things", 7)

	resp, err := http.Get(h.URL() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Name     string             `json:"name"`
		Services []string           `json:"services"`
		Metrics  map[string]float64 `json:"metrics"`
		Events   []Event            `json:"recentEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Name != "status-home" || len(body.Services) != 1 || body.Metrics["things"] != 7 {
		t.Errorf("status = %+v", body)
	}
	if len(body.Events) == 0 {
		t.Error("no events in status")
	}
}

func TestPlanReachability(t *testing.T) {
	h := New(Config{
		NAT: nat.Endpoint{Chain: []nat.Type{nat.PortRestrictedCone}, UPnP: true},
	})
	plan := h.PlanReachability(nat.Endpoint{})
	if plan.Method != nat.UPnP {
		t.Errorf("plan = %+v, want UPnP", plan)
	}
}

func TestStopTimeout(t *testing.T) {
	h := New(Config{})
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := h.Stop(ctx); err != nil {
		t.Errorf("Stop: %v", err)
	}
}

func TestDefaultName(t *testing.T) {
	h := New(Config{})
	if h.Name() != "hpop" {
		t.Errorf("default name = %q", h.Name())
	}
}
