package hpop

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SLO window geometry: good/bad events land in 15-second buckets on a ring
// covering one hour; the 5-minute fast window is the newest 20 buckets of
// the same ring. Everything is driven by the engine's injected clock, so
// tests advance a fake clock and burn rates move deterministically.
const (
	sloBucketDur = 15 * time.Second
	sloRingLen   = 240 // 1h of buckets
	sloShortLen  = 20  // 5m of buckets
)

// DefaultFastBurn is the 5m burn-rate threshold that raises the fast-burn
// signal: at 14.4x the whole 30-day budget would be gone in ~2 days, the
// classic page-now threshold.
const DefaultFastBurn = 14.4

// SLOConfig declares one service-level objective.
type SLOConfig struct {
	// Name keys the SLO in /debug/slo and the exported metric names
	// (slo.<name>.burn_rate_5m etc.).
	Name string
	// Description is operator-facing prose.
	Description string
	// Objective is the target good fraction in (0, 1]. Objective == 1
	// declares a zero-tolerance SLO: any bad event empties the budget, and
	// burn "rates" degrade to raw bad-event counts (a ratio against a zero
	// budget is undefined).
	Objective float64
	// FastBurn is the 5m burn-rate threshold that trips the fast-burn
	// signal (DefaultFastBurn when zero). For zero-tolerance SLOs the
	// threshold compares against the raw 5m bad count.
	FastBurn float64
}

// sloBucketCell is one ring slot of good/bad event weight.
type sloBucketCell struct {
	start     time.Time
	good, bad float64
}

// sloState is one declared SLO's live state.
type sloState struct {
	cfg       SLOConfig
	buckets   [sloRingLen]sloBucketCell
	totalGood float64
	totalBad  float64
	fastBurn  bool
}

// SLOStatus is one SLO's row in the /debug/slo snapshot.
type SLOStatus struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Objective   float64 `json:"objective"`
	// Window sums.
	Good5m float64 `json:"good5m"`
	Bad5m  float64 `json:"bad5m"`
	Good1h float64 `json:"good1h"`
	Bad1h  float64 `json:"bad1h"`
	// BurnRate is (bad fraction)/(error budget) over the window — 1.0
	// means spending exactly the allowed budget. Zero-tolerance SLOs
	// report raw bad counts here instead.
	BurnRate5m float64 `json:"burnRate5m"`
	BurnRate1h float64 `json:"burnRate1h"`
	// BudgetRemaining1h is the fraction of the 1h error budget left:
	// 1 = untouched, 0 = spent (overspending clamps to 0 — the pageable
	// fact is "the budget is gone", not how far past it went; burn rates
	// carry the magnitude).
	BudgetRemaining1h float64 `json:"budgetRemaining1h"`
	FastBurn          bool    `json:"fastBurn"`
	TotalGood         float64 `json:"totalGood"`
	TotalBad          float64 `json:"totalBad"`
}

// SLOSnapshot is the /debug/slo JSON shape.
type SLOSnapshot struct {
	Now  time.Time   `json:"now"`
	SLOs []SLOStatus `json:"slos"`
}

// SLOEngine computes multi-window burn rates and error budgets over
// declared SLOs. Components feed it good/bad event weights (fleet rollup
// deltas, in the origin's case); the engine buckets them on its clock and
// derives 5m/1h burn rates, budget gauges, a fast-burn metric, and an
// slo_burn span on each fast-burn rising edge so alerting/self-healing
// machinery can consume it. Nil-receiver safe throughout.
type SLOEngine struct {
	mu          sync.Mutex
	now         func() time.Time
	metrics     *Metrics
	tracer      *Tracer
	slos        map[string]*sloState
	order       []string
	lastRefresh time.Time
}

// NewSLOEngine creates an engine on the given clock (nil means wall time).
func NewSLOEngine(now func() time.Time) *SLOEngine {
	if now == nil {
		now = time.Now
	}
	return &SLOEngine{now: now, slos: make(map[string]*sloState)}
}

// SetMetrics wires gauge export (slo.<name>.burn_rate_5m / burn_rate_1h /
// error_budget_remaining / fast_burn). Gauges refresh on Snapshot and at
// bucket cadence during Record.
func (e *SLOEngine) SetMetrics(m *Metrics) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.metrics = m
}

// SetTracer wires slo_burn span emission on fast-burn rising edges.
func (e *SLOEngine) SetTracer(t *Tracer) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tracer = t
}

// Declare registers an SLO (idempotent by name; re-declaring updates the
// config but keeps accumulated state).
func (e *SLOEngine) Declare(cfg SLOConfig) {
	if e == nil || cfg.Name == "" {
		return
	}
	if cfg.Objective <= 0 || cfg.Objective > 1 {
		cfg.Objective = 1
	}
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = DefaultFastBurn
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.slos[cfg.Name]; ok {
		st.cfg = cfg
		return
	}
	e.slos[cfg.Name] = &sloState{cfg: cfg}
	e.order = append(e.order, cfg.Name)
}

// Record adds good/bad event weight to the named SLO's current bucket.
// Unknown names are dropped (declare first). Negative weights are clamped
// to zero. Nil-safe.
func (e *SLOEngine) Record(name string, good, bad float64) {
	if e == nil {
		return
	}
	if good < 0 {
		good = 0
	}
	if bad < 0 {
		bad = 0
	}
	if good == 0 && bad == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.slos[name]
	if !ok {
		return
	}
	now := e.now()
	b := currentBucket(&st.buckets, now)
	b.good += good
	b.bad += bad
	st.totalGood += good
	st.totalBad += bad
	// Refresh gauges/edges at most once per bucket interval so a hot
	// ingest path isn't recomputing windows on every report.
	if now.Sub(e.lastRefresh) >= sloBucketDur || e.lastRefresh.After(now) {
		e.refreshLocked(now)
	}
}

// currentBucket returns the ring slot for now, resetting it when the slot
// last held an older interval.
func currentBucket(ring *[sloRingLen]sloBucketCell, now time.Time) *sloBucketCell {
	aligned := now.Truncate(sloBucketDur)
	idx := int(aligned.UnixNano()/int64(sloBucketDur)) % sloRingLen
	if idx < 0 {
		idx += sloRingLen
	}
	b := &ring[idx]
	if !b.start.Equal(aligned) {
		*b = sloBucketCell{start: aligned}
	}
	return b
}

// windowSums totals good/bad over the newest n buckets ending at now.
func windowSums(ring *[sloRingLen]sloBucketCell, now time.Time, n int) (good, bad float64) {
	aligned := now.Truncate(sloBucketDur)
	oldest := aligned.Add(-time.Duration(n-1) * sloBucketDur)
	for i := range ring {
		b := &ring[i]
		if b.start.IsZero() || b.start.Before(oldest) || b.start.After(aligned) {
			continue
		}
		good += b.good
		bad += b.bad
	}
	return good, bad
}

// burnRate computes bad-fraction over error-budget; zero-tolerance SLOs
// (objective == 1) report the raw bad count, since any bad event at all is
// a violation and a ratio against a zero budget is undefined.
func burnRate(good, bad, objective float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		return bad
	}
	return (bad / total) / budget
}

// statusLocked computes one SLO's status at now; e.mu must be held.
func (e *SLOEngine) statusLocked(st *sloState, now time.Time) SLOStatus {
	s := SLOStatus{
		Name:        st.cfg.Name,
		Description: st.cfg.Description,
		Objective:   st.cfg.Objective,
		TotalGood:   st.totalGood,
		TotalBad:    st.totalBad,
	}
	s.Good5m, s.Bad5m = windowSums(&st.buckets, now, sloShortLen)
	s.Good1h, s.Bad1h = windowSums(&st.buckets, now, sloRingLen)
	s.BurnRate5m = burnRate(s.Good5m, s.Bad5m, st.cfg.Objective)
	s.BurnRate1h = burnRate(s.Good1h, s.Bad1h, st.cfg.Objective)
	budget := 1 - st.cfg.Objective
	switch {
	case budget <= 0:
		if s.Bad1h > 0 {
			s.BudgetRemaining1h = 0
		} else {
			s.BudgetRemaining1h = 1
		}
	case s.Good1h+s.Bad1h == 0:
		s.BudgetRemaining1h = 1
	default:
		allowed := (s.Good1h + s.Bad1h) * budget
		s.BudgetRemaining1h = 1 - s.Bad1h/allowed
		if s.BudgetRemaining1h < 0 {
			s.BudgetRemaining1h = 0
		}
	}
	s.FastBurn = s.Bad5m > 0 && s.BurnRate5m >= st.cfg.FastBurn
	return s
}

// refreshLocked recomputes every SLO's status, exports gauges, and emits an
// slo_burn span on each fast-burn rising edge; e.mu must be held.
func (e *SLOEngine) refreshLocked(now time.Time) []SLOStatus {
	e.lastRefresh = now
	out := make([]SLOStatus, 0, len(e.order))
	for _, name := range e.order {
		st := e.slos[name]
		s := e.statusLocked(st, now)
		out = append(out, s)
		prefix := "slo." + name + "."
		e.metrics.Set(prefix+"burn_rate_5m", s.BurnRate5m)
		e.metrics.Set(prefix+"burn_rate_1h", s.BurnRate1h)
		e.metrics.Set(prefix+"error_budget_remaining", s.BudgetRemaining1h)
		fast := 0.0
		if s.FastBurn {
			fast = 1
		}
		e.metrics.Set(prefix+"fast_burn", fast)
		if s.FastBurn && !st.fastBurn {
			// Rising edge: surface a span the health machinery (and a
			// human tailing /debug/traces) can react to.
			sp := e.tracer.Start("slo", "slo_burn")
			sp.SetLabel("slo", name)
			sp.SetLabel("burn_rate_5m", fmt.Sprintf("%.2f", s.BurnRate5m))
			sp.SetLabel("burn_rate_1h", fmt.Sprintf("%.2f", s.BurnRate1h))
			sp.SetLabel("budget_remaining", fmt.Sprintf("%.4f", s.BudgetRemaining1h))
			sp.End()
		}
		st.fastBurn = s.FastBurn
	}
	return out
}

// Snapshot returns every SLO's status in declaration order, refreshing the
// exported gauges as a side effect.
func (e *SLOEngine) Snapshot() SLOSnapshot {
	if e == nil {
		return SLOSnapshot{SLOs: []SLOStatus{}}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	return SLOSnapshot{Now: now, SLOs: e.refreshLocked(now)}
}

// Handler serves the snapshot as JSON at GET /debug/slo. Nil-safe: an
// engine-less daemon serves an empty SLO list.
func (e *SLOEngine) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(e.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
