package hpop

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestHistogramMergeBoundsMismatch: merging across different bucket layouts
// must fail loudly, never remap.
func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2, 4})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across different bounds succeeded")
	}
	c := NewHistogram([]float64{1, 2})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge across different bucket counts succeeded")
	}
	if err := a.MergeBuckets([]uint64{1, 2}, 3); err == nil {
		t.Fatal("MergeBuckets with wrong length succeeded")
	}
	// Same bounds merge fine, nil receivers and args are no-ops.
	if err := a.Merge(NewHistogram([]float64{1, 2, 3})); err != nil {
		t.Fatalf("compatible merge: %v", err)
	}
	var nilH *Histogram
	if err := nilH.Merge(a); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge nil: %v", err)
	}
}

// TestHistogramMergeProperty (satellite): merging K histograms is
// bucket-exact equivalent to observing the union stream, and quantiles
// stay monotone in p after the merge. Samples are small multiples of 1/8
// so the float sums compare exactly regardless of addition order.
func TestHistogramMergeProperty(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	prop := func(streams [][]uint16) bool {
		union := NewHistogram(bounds)
		merged := NewHistogram(bounds)
		for _, stream := range streams {
			part := NewHistogram(bounds)
			for _, raw := range stream {
				v := float64(raw%128) / 8 // exact in float64: sums add exactly
				union.Observe(v)
				part.Observe(v)
			}
			if err := merged.Merge(part); err != nil {
				t.Logf("merge: %v", err)
				return false
			}
		}
		if !reflect.DeepEqual(merged.BucketCounts(), union.BucketCounts()) {
			t.Logf("bucket counts diverged: %v vs %v", merged.BucketCounts(), union.BucketCounts())
			return false
		}
		if merged.Count() != union.Count() || merged.Sum() != union.Sum() {
			t.Logf("count/sum diverged: %d/%v vs %d/%v",
				merged.Count(), merged.Sum(), union.Count(), union.Sum())
			return false
		}
		// Quantiles are monotone in p and identical to the union stream's.
		prev := -1.0
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := merged.Quantile(p)
			if q < prev {
				t.Logf("quantile not monotone at p=%v: %v < %v", p, q, prev)
				return false
			}
			if uq := union.Quantile(p); q != uq {
				t.Logf("quantile diverged at p=%v: %v vs %v", p, q, uq)
				return false
			}
			prev = q
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(7)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryReporterDeltas: reports carry deltas since the last ack,
// retries resend the identical pending payload, and the ack advances the
// baseline.
func TestTelemetryReporterDeltas(t *testing.T) {
	m := NewMetrics()
	r := NewTelemetryReporter("peer-1", m, 8)

	if rep := r.NextReport(); rep != nil {
		t.Fatalf("empty registry produced report %+v", rep)
	}

	m.Add("nocdn.peer.hits", 5)
	m.Set("nocdn.peer.saturation", 0.25)
	m.HistogramWithBounds("nocdn.peer.serve_seconds", []float64{0.01, 0.1}).Observe(0.005)
	r.ObserveKey("example.com/index.html", 3)

	rep := r.NextReport()
	if rep == nil {
		t.Fatal("no report despite deltas")
	}
	if rep.Source != "peer-1" || rep.Seq != 1 {
		t.Fatalf("source/seq = %s/%d", rep.Source, rep.Seq)
	}
	if rep.Counters["nocdn.peer.hits"] != 5 {
		t.Fatalf("hits delta = %v", rep.Counters["nocdn.peer.hits"])
	}
	if rep.Gauges["nocdn.peer.saturation"] != 0.25 {
		t.Fatalf("saturation gauge = %v", rep.Gauges["nocdn.peer.saturation"])
	}
	d, ok := rep.Histograms["nocdn.peer.serve_seconds"]
	if !ok || d.Counts[0] != 1 || d.Sum != 0.005 {
		t.Fatalf("serve delta = %+v (ok=%v)", d, ok)
	}
	if rep.HotKeys["example.com/index.html"] != 3 {
		t.Fatalf("hot keys = %v", rep.HotKeys)
	}

	// Unacked: more traffic arrives, but the pending report is immutable
	// and NextReport resends the same payload (idempotent retry).
	m.Add("nocdn.peer.hits", 2)
	again := r.NextReport()
	if again != rep {
		t.Fatal("pending report was rebuilt, retries are not idempotent")
	}

	// A stale ack is ignored; the real ack commits the baseline.
	if r.Ack(0) {
		t.Fatal("stale ack consumed")
	}
	if !r.Ack(rep.Seq) {
		t.Fatal("ack refused")
	}
	next := r.NextReport()
	if next == nil {
		t.Fatal("post-ack deltas lost")
	}
	if next.Seq != 2 || next.Counters["nocdn.peer.hits"] != 2 {
		t.Fatalf("second report = seq %d, hits %v (want 2, 2)",
			next.Seq, next.Counters["nocdn.peer.hits"])
	}
	r.Ack(next.Seq)
	if rep := r.NextReport(); rep != nil {
		t.Fatalf("quiescent registry produced report %+v", rep)
	}
}

// TestSpaceSavingSketch: exact under capacity, guarantees heavy hitters
// over capacity, deterministic Top ordering, Drain resets.
func TestSpaceSavingSketch(t *testing.T) {
	s := NewSpaceSaving(3)
	s.Add("a", 10)
	s.Add("b", 5)
	s.Add("c", 2)
	top := s.Top(0)
	if len(top) != 3 || top[0].Key != "a" || top[0].Count != 10 || top[2].Key != "c" {
		t.Fatalf("top = %+v", top)
	}

	// d evicts the minimum (c, count 2) and inherits its count.
	s.Add("d", 1)
	top = s.Top(2)
	if len(top) != 2 || top[0].Key != "a" {
		t.Fatalf("top after eviction = %+v", top)
	}
	all := s.Top(0)
	var foundD bool
	for _, kc := range all {
		if kc.Key == "c" {
			t.Fatalf("evicted key still present: %+v", all)
		}
		if kc.Key == "d" {
			foundD = true
			if kc.Count != 3 || kc.Err != 2 {
				t.Fatalf("d inherited wrong count/err: %+v", kc)
			}
		}
	}
	if !foundD {
		t.Fatalf("new key missing after eviction: %+v", all)
	}

	// A true heavy hitter always survives: hammer one key against churn.
	s2 := NewSpaceSaving(4)
	for i := 0; i < 1000; i++ {
		s2.Add("hot", 10)
		s2.Add(string(rune('a'+i%26)), 1)
	}
	if top := s2.Top(1); top[0].Key != "hot" {
		t.Fatalf("heavy hitter lost: %+v", top)
	}

	drained := s2.Drain()
	if drained["hot"] == 0 {
		t.Fatalf("drain lost the hot key: %v", drained)
	}
	if s2.Len() != 0 {
		t.Fatalf("sketch not reset after drain: %d", s2.Len())
	}
}
