package hpop

import (
	"sync"
	"time"
)

// Circuit-breaker defaults. The window is deliberately small: a residential
// peer that fails half of its last 16 requests is not about to get better on
// request 17, and a small window keeps open/close decisions responsive to
// flapping links.
const (
	// DefaultBreakerWindow is the sliding outcome window size.
	DefaultBreakerWindow = 16
	// DefaultFailureThreshold opens the breaker when the windowed failure
	// rate reaches it (with at least DefaultBreakerMinSamples outcomes).
	DefaultFailureThreshold = 0.5
	// DefaultBreakerMinSamples gates opening until the window holds a
	// sample — one failed request out of one is not a statistic.
	DefaultBreakerMinSamples = 4
	// DefaultBreakerCooldown is how long an open breaker blocks before
	// half-opening for probes.
	DefaultBreakerCooldown = 5 * time.Second
	// DefaultProbeBudget bounds concurrent half-open probes, so a recovering
	// peer is never stampeded by every waiting client at once.
	DefaultProbeBudget = 1
	// DefaultReadmitAfter is how many consecutive half-open probe successes
	// close the breaker again — the hysteresis against flapping: one lucky
	// response does not re-admit a peer.
	DefaultReadmitAfter = 2
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// The classic three states.
const (
	// BreakerClosed: traffic flows, outcomes are windowed.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probes may pass; their outcomes
	// decide between closing and re-opening.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig shapes a Breaker. The zero value applies the defaults above.
type BreakerConfig struct {
	// Window is the sliding outcome window size (<= 0: default).
	Window int
	// FailureThreshold in [0, 1] opens the breaker when the windowed
	// failure rate reaches it (<= 0: default).
	FailureThreshold float64
	// MinSamples gates opening until the window holds that many outcomes
	// (<= 0: default).
	MinSamples int
	// Cooldown is the open -> half-open delay (<= 0: default).
	Cooldown time.Duration
	// ProbeBudget bounds concurrent half-open probes (<= 0: default).
	ProbeBudget int
	// ReadmitAfter is how many consecutive probe successes close a
	// half-open breaker (<= 0: default).
	ReadmitAfter int
	// Now is injectable for tests (nil: time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = DefaultBreakerWindow
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = DefaultFailureThreshold
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultBreakerMinSamples
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = DefaultProbeBudget
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = DefaultReadmitAfter
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a race-clean closed/open/half-open circuit breaker over a
// sliding outcome window. Allow asks permission before an attempt; Record
// reports the attempt's outcome. An outcome recorded after the breaker has
// moved on (a slow request straddling a transition) lands in whatever state
// the breaker is in now — stale outcomes are deliberately treated as
// current, which at worst delays one transition by one sample.
type Breaker struct {
	cfg BreakerConfig

	mu    sync.Mutex
	state BreakerState
	// failed is the sliding outcome ring (true = failure); count is how much
	// of it is populated, pos the next write slot, fails the failure total.
	failed []bool
	pos    int
	count  int
	fails  int

	openedAt time.Time
	opens    int64
	// probes counts half-open probes granted but not yet recorded; probeOK
	// counts consecutive successful probes.
	probes  int
	probeOK int
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, failed: make([]bool, cfg.Window)}
}

// Allow reports whether an attempt may proceed, granting a probe slot when
// half-open. A cooled-down open breaker half-opens here (and the call that
// trips the transition gets the first probe).
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 1
		b.probeOK = 0
		return true
	case BreakerHalfOpen:
		if b.probes >= b.cfg.ProbeBudget {
			return false
		}
		b.probes++
		return true
	default:
		return true
	}
}

// Record reports one attempt outcome. Closed: the outcome enters the window
// and may open the breaker. Half-open: a failure re-opens immediately;
// ReadmitAfter consecutive successes close. Open: ignored (stale).
func (b *Breaker) Record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !ok {
			b.openLocked()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.ReadmitAfter {
			b.closeLocked()
		}
	case BreakerClosed:
		if b.count == len(b.failed) && b.failed[b.pos] {
			b.fails-- // evicted outcome leaves the window
		}
		b.failed[b.pos] = !ok
		if !ok {
			b.fails++
		}
		b.pos = (b.pos + 1) % len(b.failed)
		if b.count < len(b.failed) {
			b.count++
		}
		if b.count >= b.cfg.MinSamples &&
			float64(b.fails)/float64(b.count) >= b.cfg.FailureThreshold {
			b.openLocked()
		}
	}
}

// openLocked transitions to open; b.mu must be held.
func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.opens++
	b.probes = 0
	b.probeOK = 0
}

// closeLocked transitions to closed with a fresh window; b.mu must be held.
func (b *Breaker) closeLocked() {
	b.state = BreakerClosed
	for i := range b.failed {
		b.failed[i] = false
	}
	b.pos, b.count, b.fails = 0, 0, 0
	b.probes = 0
	b.probeOK = 0
}

// ProbeDue reports whether the breaker would admit a probe right now: open
// with the cooldown elapsed (the next Allow half-opens), or half-open with
// probe budget to spare. Read-only — routing layers use it to steer one real
// request at the recovering peer, because without that canary traffic an
// open breaker on a deprioritized peer would never see the Allow call that
// drives recovery.
func (b *Breaker) ProbeDue() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown
	case BreakerHalfOpen:
		return b.probes < b.cfg.ProbeBudget
	}
	return false
}

// State returns the current position. Note that an open breaker past its
// cooldown still reports open until an Allow call half-opens it — the
// transition is driven by traffic, not by observation.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// FailureRate returns the windowed failure rate and sample count.
func (b *Breaker) FailureRate() (rate float64, samples int) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.count == 0 {
		return 0, 0
	}
	return float64(b.fails) / float64(b.count), b.count
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
