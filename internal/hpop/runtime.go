package hpop

import (
	"runtime"
)

// Runtime health metric names exported by SampleRuntime.
const (
	// MetricGoroutines is the live goroutine count gauge.
	MetricGoroutines = "go.goroutines"
	// MetricHeapBytes is the in-use heap bytes gauge.
	MetricHeapBytes = "go.heap_bytes"
	// MetricGCPauseSeconds is the stop-the-world GC pause histogram.
	MetricGCPauseSeconds = "go.gc_pause_seconds"
)

// gcPauseBounds sizes the GC pause histogram for sub-millisecond pauses
// (healthy) up to the hundreds of milliseconds an overloaded home box shows.
var gcPauseBounds = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
}

// SampleRuntime refreshes the Go runtime health metrics in the registry:
// the goroutine-count and heap-bytes gauges, and one histogram sample per GC
// pause completed since the previous call (each pause is observed exactly
// once across calls). It is invoked on every /metrics scrape, so runtime
// health costs nothing between scrapes. No-op on a nil registry.
func (m *Metrics) SampleRuntime() {
	if m == nil {
		return
	}
	m.Set(MetricGoroutines, float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Set(MetricHeapBytes, float64(ms.HeapAlloc))

	h := m.HistogramWithBounds(MetricGCPauseSeconds, gcPauseBounds)
	// Drain pauses newer than the high-water mark. PauseNs is a 256-entry
	// ring indexed by GC number; if more than 256 GCs ran between scrapes the
	// overwritten pauses are gone — observe only what the ring still holds.
	for {
		seen := m.gcSeen.Load()
		num := ms.NumGC
		if num <= seen {
			return
		}
		if !m.gcSeen.CompareAndSwap(seen, num) {
			continue // another scraper claimed this range
		}
		first := seen
		if num > 256 && first < num-256 {
			first = num - 256
		}
		for gc := first + 1; gc <= num; gc++ {
			h.Observe(float64(ms.PauseNs[(gc+255)%256]) / 1e9)
		}
		return
	}
}
