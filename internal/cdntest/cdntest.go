// Package cdntest is the black-box CDN acceptance suite for the NoCDN
// fleet, in the style of alphagov/cdn-acceptance-tests: every test boots a
// real origin + N peers (+ loader where the case needs one) over local
// HTTP, drives requests through the peer tier, and asserts observable edge
// behavior — cache state via X-Cache/Age, serve-stale windows, failover
// order, and the no-manipulation guarantee. Nothing here reaches into peer
// or origin internals on the serve path: if the suite passes, an operator
// watching the same headers would draw the same conclusions.
//
// Suites:
//
//	cache_test.go        — hit/miss/TTL, conditional revalidation, Vary
//	servestale_test.go   — stale-while-revalidate, stale-if-error, hash-epoch
//	failover_test.go     — replica peers, origin fallback, origin outages
//	nomanipulate_test.go — byte/header pass-through, tamper detection
package cdntest

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpop/internal/faults"
	"hpop/internal/hpop"
	"hpop/internal/nocdn"
)

// Clock is the shared fake time source injected into the origin and every
// peer, so TTL expiry is driven by Advance, not sleeps.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock starts a clock at an arbitrary fixed instant.
func NewClock() *Clock {
	return &Clock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

// Now returns the current fake time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Gate wraps a server's handler with kill switches: Down fails every
// request, ContentDown only the origin's /content paths (wrapper stays up
// — the brownout interplay cases need exactly that split). It also counts
// /content results by status so tests can assert "the 304 saved body
// bytes" without white-box access.
type Gate struct {
	inner       http.Handler
	Down        atomic.Bool
	ContentDown atomic.Bool

	// ContentRequests counts /content requests that reached the inner
	// handler; Content304s counts how many were answered 304.
	ContentRequests atomic.Int64
	Content304s     atomic.Int64
}

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	content := strings.HasPrefix(r.URL.Path, "/content")
	if g.Down.Load() || (content && g.ContentDown.Load()) {
		http.Error(w, "gate: injected outage", http.StatusBadGateway)
		return
	}
	if !content {
		g.inner.ServeHTTP(w, r)
		return
	}
	g.ContentRequests.Add(1)
	sw := &statusWriter{ResponseWriter: w}
	g.inner.ServeHTTP(sw, r)
	if sw.status == http.StatusNotModified {
		g.Content304s.Add(1)
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// Config shapes one stack.
type Config struct {
	// Peers is how many peers to boot (default 1).
	Peers int
	// PeerCacheBytes sizes each peer's memory tier (default 8 MiB).
	PeerCacheBytes int
	// DiskCache attaches a disk tier to every peer.
	DiskCache bool
	// Replicas is passed to the origin's wrapper generation.
	Replicas int
	// OriginOpts appends origin options (cache policy, wrapper reuse, ...).
	OriginOpts []nocdn.OriginOption
}

// Stack is one live origin + N peers, all over real HTTP, sharing one fake
// clock. Tests talk to it like any HTTP client would.
type Stack struct {
	T        *testing.T
	Provider string
	Clock    *Clock

	Origin     *nocdn.Origin
	OriginGate *Gate
	OriginSrv  *httptest.Server

	Peers     []*nocdn.Peer
	PeerGates []*Gate
	PeerSrvs  []*httptest.Server

	Health *hpop.HealthRegistry
	client *http.Client
}

// NewStack boots the stack; everything is torn down via t.Cleanup.
func NewStack(t *testing.T, cfg Config) *Stack {
	t.Helper()
	if cfg.Peers <= 0 {
		cfg.Peers = 1
	}
	if cfg.PeerCacheBytes <= 0 {
		cfg.PeerCacheBytes = 8 << 20
	}
	s := &Stack{
		T:        t,
		Provider: "acceptance.example",
		Clock:    NewClock(),
		Health:   hpop.NewHealthRegistry(hpop.BreakerConfig{}),
		client:   &http.Client{Timeout: 10 * time.Second},
	}
	opts := append([]nocdn.OriginOption{
		nocdn.WithClock(s.Clock.Now),
		nocdn.WithReplicas(cfg.Replicas),
	}, cfg.OriginOpts...)
	s.Origin = nocdn.NewOrigin(s.Provider, opts...)
	s.OriginGate = &Gate{inner: s.Origin.Handler()}
	s.OriginSrv = httptest.NewServer(s.OriginGate)
	t.Cleanup(s.OriginSrv.Close)

	for i := 0; i < cfg.Peers; i++ {
		p := nocdn.NewPeer("peer-"+strconv.Itoa(i), cfg.PeerCacheBytes)
		p.SetClock(s.Clock.Now)
		p.SetMetrics(hpop.NewMetrics())
		p.EnableTelemetry(0)
		if cfg.DiskCache {
			if err := p.AttachDiskCache(t.TempDir(), 64<<20, 8<<20); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(p.CloseDiskCache)
		}
		p.SignUp(s.Provider, s.OriginSrv.URL)
		gate := &Gate{inner: p.Handler()}
		srv := httptest.NewServer(gate)
		t.Cleanup(srv.Close)
		s.Peers = append(s.Peers, p)
		s.PeerGates = append(s.PeerGates, gate)
		s.PeerSrvs = append(s.PeerSrvs, srv)
		s.Origin.RegisterPeer(p.ID, srv.URL, float64(10+10*i))
	}
	return s
}

// Publish registers an object (Content-Type auto-detected from the path).
func (s *Stack) Publish(path string, data []byte) {
	s.Origin.AddObject(path, data)
}

// PublishPage registers a one-container page over already-published paths.
func (s *Stack) PublishPage(name, container string, embedded ...string) {
	s.T.Helper()
	if err := s.Origin.AddPage(nocdn.Page{Name: name, Container: container, Embedded: embedded}); err != nil {
		s.T.Fatal(err)
	}
}

// Loader builds a page loader bound to this stack's origin.
func (s *Stack) Loader() *nocdn.Loader {
	return &nocdn.Loader{
		OriginURL:    s.OriginSrv.URL,
		Metrics:      hpop.NewMetrics(),
		Health:       s.Health,
		Retry:        faults.Policy{MaxAttempts: 1},
		FetchTimeout: 5 * time.Second,
		Now:          s.Clock.Now,
	}
}

// Resp is one edge response, body drained.
type Resp struct {
	Status int
	Header http.Header
	Body   []byte
}

// XCache returns the response's X-Cache verdict.
func (r *Resp) XCache() string { return r.Header.Get(nocdn.XCacheHeader) }

// Age returns the response's Age header in seconds (-1 when absent or
// malformed).
func (r *Resp) Age() int {
	v := r.Header.Get(nocdn.AgeHeader)
	if v == "" {
		return -1
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return -1
	}
	return n
}

// Get fetches path through peer i with optional header pairs
// ("Name", "value", ...).
func (s *Stack) Get(peer int, path string, hdr ...string) *Resp {
	s.T.Helper()
	if len(hdr)%2 != 0 {
		s.T.Fatalf("Get: odd header pairs %v", hdr)
	}
	req, err := http.NewRequest(http.MethodGet, s.PeerSrvs[peer].URL+"/proxy/"+s.Provider+path, nil)
	if err != nil {
		s.T.Fatal(err)
	}
	for i := 0; i < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := s.client.Do(req)
	if err != nil {
		s.T.Fatalf("GET %s via peer %d: %v", path, peer, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		s.T.Fatalf("GET %s via peer %d: read body: %v", path, peer, err)
	}
	return &Resp{Status: resp.StatusCode, Header: resp.Header, Body: body}
}

// GetOK is Get plus a 200 assertion.
func (s *Stack) GetOK(peer int, path string, hdr ...string) *Resp {
	s.T.Helper()
	r := s.Get(peer, path, hdr...)
	if r.Status != http.StatusOK {
		s.T.Fatalf("GET %s via peer %d: status %d, want 200 (body %q)", path, peer, r.Status, r.Body)
	}
	return r
}

// WantXCache asserts one GET's X-Cache verdict and returns the response.
func (s *Stack) WantXCache(peer int, path, want string, hdr ...string) *Resp {
	s.T.Helper()
	r := s.GetOK(peer, path, hdr...)
	if got := r.XCache(); got != want {
		s.T.Fatalf("GET %s via peer %d: X-Cache = %q, want %q", path, peer, got, want)
	}
	return r
}

// Eventually polls fn (every few milliseconds, up to ~2s of real time) for
// background work — stale-while-revalidate refreshes — to land.
func (s *Stack) Eventually(fn func() bool, msg string) {
	s.T.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.T.Fatal("Eventually: " + msg)
}
