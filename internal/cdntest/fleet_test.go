package cdntest

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"hpop/internal/hpop"
	"hpop/internal/nocdn"
)

// getJSON fetches an origin debug endpoint and decodes it.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func findSLO(t *testing.T, snap hpop.SLOSnapshot, name string) hpop.SLOStatus {
	t.Helper()
	for _, s := range snap.SLOs {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("SLO %q missing from %+v", name, snap)
	return hpop.SLOStatus{}
}

// TestFleetTelemetrySurfacesDegradedPeer: a fault-injected degraded peer
// shows up in the origin's /debug/fleet worst-peer rankings, and the fleet
// availability error budget visibly drains on the shared fake clock — then
// the 5m burn window recovers while the 1h budget stays spent, the
// multi-window behavior an operator pages on.
func TestFleetTelemetrySurfacesDegradedPeer(t *testing.T) {
	s := NewStack(t, Config{Peers: 2})
	s.Publish("/site.html", []byte("<html>fleet acceptance</html>"))

	// peer-0 is healthy: one miss fills the cache, then hits.
	for i := 0; i < 5; i++ {
		s.GetOK(0, "/site.html")
	}

	// Fault injection: the origin's content path goes dark, and peer-1 has
	// nothing cached — every proxy attempt fails at the edge.
	s.OriginGate.ContentDown.Store(true)
	for i := 0; i < 4; i++ {
		if r := s.Get(1, "/site.html"); r.Status == http.StatusOK {
			t.Fatalf("peer-1 served %d during injected outage", r.Status)
		}
	}
	s.OriginGate.ContentDown.Store(false)

	// Both peers ship their telemetry deltas to the origin.
	for _, p := range s.Peers {
		if sent, err := p.TelemetryOnce(context.Background(), s.OriginSrv.URL); err != nil || !sent {
			t.Fatalf("telemetry from %s: sent=%v err=%v", p.ID, sent, err)
		}
	}

	// The degraded peer leads the worst-peer ranking on /debug/fleet.
	var fleet nocdn.FleetSnapshot
	getJSON(t, s.OriginSrv.URL+"/debug/fleet", &fleet)
	if fleet.Sources != 2 || fleet.Reports != 2 {
		t.Fatalf("fleet saw %d sources / %d reports, want 2/2", fleet.Sources, fleet.Reports)
	}
	worst := fleet.WorstPeers.ByErrorRate
	if len(worst) != 1 || worst[0].Peer != "peer-1" {
		t.Fatalf("byErrorRate = %+v, want only peer-1", worst)
	}
	if worst[0].ErrorRate != 1 {
		t.Fatalf("peer-1 error rate = %v, want 1 (every request failed)", worst[0].ErrorRate)
	}
	if len(fleet.HotKeys) == 0 || fleet.HotKeys[0].Key != s.Provider+"/site.html" {
		t.Fatalf("hot keys = %+v", fleet.HotKeys)
	}

	// The availability budget drained: 4 bad of 9 events against a 0.1%
	// objective burns far past the fast-burn threshold.
	var slo hpop.SLOSnapshot
	getJSON(t, s.OriginSrv.URL+"/debug/slo", &slo)
	avail := findSLO(t, slo, nocdn.SLOFleetAvailability)
	if avail.TotalGood != 5 || avail.TotalBad != 4 {
		t.Fatalf("availability events = %v/%v, want 5 good / 4 bad", avail.TotalGood, avail.TotalBad)
	}
	if avail.BudgetRemaining1h != 0 {
		t.Fatalf("budget should be fully drained: %+v", avail)
	}
	if !avail.FastBurn || avail.BurnRate5m < hpop.DefaultFastBurn {
		t.Fatalf("outage must trip fast burn: %+v", avail)
	}

	// Six fake-clock minutes of clean traffic later, the 5m window has
	// forgotten the burst but the 1h budget is still spent.
	s.Clock.Advance(6 * time.Minute)
	for i := 0; i < 5; i++ {
		s.GetOK(0, "/site.html")
	}
	if sent, err := s.Peers[0].TelemetryOnce(context.Background(), s.OriginSrv.URL); err != nil || !sent {
		t.Fatalf("second telemetry cycle: sent=%v err=%v", sent, err)
	}
	getJSON(t, s.OriginSrv.URL+"/debug/slo", &slo)
	avail = findSLO(t, slo, nocdn.SLOFleetAvailability)
	if avail.BurnRate5m != 0 || avail.FastBurn {
		t.Fatalf("burst did not age out of the 5m window: %+v", avail)
	}
	if avail.BurnRate1h == 0 || avail.BudgetRemaining1h != 0 {
		t.Fatalf("1h window forgot the outage: %+v", avail)
	}
}
