package cdntest

// The cache suite: hit/miss/TTL expiry, Cache-Control directive handling,
// conditional revalidation, Vary keying, and the Age header — each case a
// black-box request sequence against a live origin + peer.

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"hpop/internal/nocdn"
)

func TestMissThenHit(t *testing.T) {
	s := NewStack(t, Config{})
	body := []byte("<html>hello ultrabroadband</html>")
	s.Publish("/index.html", body)

	r := s.WantXCache(0, "/index.html", nocdn.XCacheMiss)
	if !bytes.Equal(r.Body, body) {
		t.Fatalf("MISS body = %q, want %q", r.Body, body)
	}
	if r.Age() != 0 {
		t.Fatalf("MISS Age = %d, want 0", r.Age())
	}

	r = s.WantXCache(0, "/index.html", nocdn.XCacheHit)
	if !bytes.Equal(r.Body, body) {
		t.Fatalf("HIT body = %q, want %q", r.Body, body)
	}
	if got := s.Peers[0].OriginFetches(); got != 1 {
		t.Fatalf("origin fetches = %d, want 1 (second request must be served from cache)", got)
	}
	if got := s.OriginGate.ContentRequests.Load(); got != 1 {
		t.Fatalf("origin /content requests = %d, want 1", got)
	}
}

func TestTTLExpiryRevalidates(t *testing.T) {
	s := NewStack(t, Config{}) // default policy: max-age=60, swr=30
	s.Publish("/a.bin", []byte("payload-a"))

	s.WantXCache(0, "/a.bin", nocdn.XCacheMiss)
	s.WantXCache(0, "/a.bin", nocdn.XCacheHit)

	// Beyond max-age + stale-while-revalidate: the peer must confirm with
	// the origin before serving. Content is unchanged, so the conditional
	// request comes back 304 and the entry is refreshed in place.
	s.Clock.Advance(91 * time.Second)
	s.WantXCache(0, "/a.bin", nocdn.XCacheRevalidated)
	if got := s.OriginGate.Content304s.Load(); got != 1 {
		t.Fatalf("origin 304s = %d, want 1", got)
	}

	// The 304 reset the entry's age: fresh again.
	r := s.WantXCache(0, "/a.bin", nocdn.XCacheHit)
	if !bytes.Equal(r.Body, []byte("payload-a")) {
		t.Fatalf("post-revalidation body = %q", r.Body)
	}
}

func TestMaxAgeHonored(t *testing.T) {
	s := NewStack(t, Config{OriginOpts: []nocdn.OriginOption{
		nocdn.WithCachePolicy(10*time.Second, 0, 0),
	}})
	s.Publish("/short.bin", []byte("short-lived"))

	s.WantXCache(0, "/short.bin", nocdn.XCacheMiss)
	s.Clock.Advance(9 * time.Second)
	s.WantXCache(0, "/short.bin", nocdn.XCacheHit)
	// One second past max-age, with no stale windows granted: revalidate.
	s.Clock.Advance(2 * time.Second)
	s.WantXCache(0, "/short.bin", nocdn.XCacheRevalidated)
}

func TestNoStoreNeverCached(t *testing.T) {
	s := NewStack(t, Config{})
	s.Publish("/private.json", []byte(`{"secret":1}`))
	s.Origin.SetObjectHeader("/private.json", "Cache-Control", "no-store")

	for i := 0; i < 3; i++ {
		r := s.WantXCache(0, "/private.json", nocdn.XCacheMiss)
		if !bytes.Equal(r.Body, []byte(`{"secret":1}`)) {
			t.Fatalf("request %d: body = %q", i, r.Body)
		}
	}
	if got := s.Peers[0].OriginFetches(); got != 3 {
		t.Fatalf("origin fetches = %d, want 3 (no-store must fetch every time)", got)
	}
}

func TestNoCacheRevalidatesEveryServe(t *testing.T) {
	s := NewStack(t, Config{})
	s.Publish("/live.json", []byte(`{"v":1}`))
	s.Origin.SetObjectHeader("/live.json", "Cache-Control", "no-cache")

	s.WantXCache(0, "/live.json", nocdn.XCacheMiss)
	// no-cache allows storing but demands revalidation before every serve —
	// each subsequent request is a conditional round trip answered 304.
	s.WantXCache(0, "/live.json", nocdn.XCacheRevalidated)
	s.WantXCache(0, "/live.json", nocdn.XCacheRevalidated)
	if got := s.OriginGate.Content304s.Load(); got != 2 {
		t.Fatalf("origin 304s = %d, want 2", got)
	}
	if got := s.Peers[0].OriginFetches(); got != 1 {
		t.Fatalf("origin body fetches = %d, want 1 (revalidations must not refetch the body)", got)
	}
}

func TestSMaxAgeTakesPrecedenceForSharedCache(t *testing.T) {
	s := NewStack(t, Config{})
	s.Publish("/shared.css", []byte("body{}"))
	s.Origin.SetObjectHeader("/shared.css", "Cache-Control", "max-age=1, s-maxage=120")

	s.WantXCache(0, "/shared.css", nocdn.XCacheMiss)
	// Past max-age but inside s-maxage: the peer is a shared cache, so
	// s-maxage governs and this is still a fresh hit.
	s.Clock.Advance(60 * time.Second)
	s.WantXCache(0, "/shared.css", nocdn.XCacheHit)
	// Past s-maxage too: revalidation required.
	s.Clock.Advance(61 * time.Second)
	s.WantXCache(0, "/shared.css", nocdn.XCacheRevalidated)
}

func TestExpiresFallbackWhenNoCacheControl(t *testing.T) {
	s := NewStack(t, Config{OriginOpts: []nocdn.OriginOption{
		// Negative max-age: the origin sends no Cache-Control at all.
		nocdn.WithCachePolicy(-1, 0, 0),
	}})
	s.Publish("/legacy.bin", []byte("expires-era content"))
	s.Origin.SetObjectHeader("/legacy.bin", "Expires",
		s.Clock.Now().Add(40*time.Second).UTC().Format(http.TimeFormat))

	s.WantXCache(0, "/legacy.bin", nocdn.XCacheMiss)
	s.Clock.Advance(39 * time.Second)
	s.WantXCache(0, "/legacy.bin", nocdn.XCacheHit)
	s.Clock.Advance(2 * time.Second)
	s.WantXCache(0, "/legacy.bin", nocdn.XCacheRevalidated)
}

func TestETagRevalidationSavesBodyBytes(t *testing.T) {
	s := NewStack(t, Config{})
	big := bytes.Repeat([]byte("x"), 64<<10)
	s.Publish("/big.bin", big)

	s.WantXCache(0, "/big.bin", nocdn.XCacheMiss)
	served := s.Origin.OriginBytes()

	s.Clock.Advance(2 * time.Minute)
	s.WantXCache(0, "/big.bin", nocdn.XCacheRevalidated)
	if got := s.Origin.OriginBytes(); got != served {
		t.Fatalf("origin body bytes grew %d -> %d across a 304 revalidation", served, got)
	}
	if got := s.OriginGate.Content304s.Load(); got != 1 {
		t.Fatalf("origin 304s = %d, want 1", got)
	}
}

func TestVaryKeysVariantsSeparately(t *testing.T) {
	s := NewStack(t, Config{})
	s.Publish("/greet.txt", []byte("hello"))
	s.Origin.SetObjectHeader("/greet.txt", "Vary", "Accept-Language")

	// First response teaches the peer the Vary names; it was keyed without
	// them, so the first request per variant misses once, then hits.
	s.WantXCache(0, "/greet.txt", nocdn.XCacheMiss, "Accept-Language", "en")
	s.WantXCache(0, "/greet.txt", nocdn.XCacheMiss, "Accept-Language", "en")
	s.WantXCache(0, "/greet.txt", nocdn.XCacheHit, "Accept-Language", "en")
	// A different variant value must not be served from the en entry.
	s.WantXCache(0, "/greet.txt", nocdn.XCacheMiss, "Accept-Language", "fr")
	s.WantXCache(0, "/greet.txt", nocdn.XCacheHit, "Accept-Language", "fr")
	// And en stays cached independently.
	s.WantXCache(0, "/greet.txt", nocdn.XCacheHit, "Accept-Language", "en")
}

func TestAgeHeaderCountsResidency(t *testing.T) {
	s := NewStack(t, Config{})
	s.Publish("/aged.bin", []byte("aging payload"))

	s.WantXCache(0, "/aged.bin", nocdn.XCacheMiss)
	s.Clock.Advance(30 * time.Second)
	if r := s.WantXCache(0, "/aged.bin", nocdn.XCacheHit); r.Age() != 30 {
		t.Fatalf("Age after 30s = %d, want 30", r.Age())
	}
	s.Clock.Advance(15 * time.Second)
	if r := s.WantXCache(0, "/aged.bin", nocdn.XCacheHit); r.Age() != 45 {
		t.Fatalf("Age after 45s = %d, want 45", r.Age())
	}
}
