package cdntest

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"hpop/internal/nocdn"
	"hpop/internal/sim"
)

// This suite is the kill-and-recover half of the acceptance tests: it boots
// a real origin with a durable control plane (WAL + snapshots) over HTTP,
// drives Merkle-committed settlement traffic against it like a peer fleet
// would, kills the origin without any shutdown (the in-process equivalent of
// SIGKILL: the journal tail on disk is all that survives), restarts it from
// the same state directory, and asserts the money invariants:
//
//   - exactly-once credit: no acked settlement is lost, none is applied twice
//   - in-doubt batches (ack lost in the crash) retry safely — 200 if they
//     never settled, 400 replay if they did, identical final credit either way
//   - the replay-nonce window survives, so pre-crash uploads cannot re-settle
//   - audit flags and suspensions persist
//   - the fleet converges: recovered origins serve byte-stable wrapper maps
//     and settle fresh traffic immediately
//
// Everything runs over the HTTP surface (wrapper fetch, /usage/batch,
// /accounting, /debug/audit, /debug/wal) — no reaching into origin state on
// the assert path beyond what an operator could curl.

// chaosOrigin boots one origin with a durable control plane in dir — the
// same construction the daemon performs on every (re)start: attach the WAL
// first, then republish content and re-register the static fleet.
func chaosOrigin(t *testing.T, dir string, seed uint64) (*nocdn.Origin, *httptest.Server, nocdn.RecoveryStats) {
	t.Helper()
	o := nocdn.NewOrigin("chaos.example", nocdn.WithRNG(sim.NewRNG(seed)))
	stats, err := o.AttachWAL(dir, nocdn.WALOptions{Fsync: nocdn.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	o.AddObject("/index.html", bytes.Repeat([]byte("c"), 400))
	o.AddObject("/app.js", bytes.Repeat([]byte("j"), 300))
	if err := o.AddPage(nocdn.Page{Name: "index", Container: "/index.html", Embedded: []string{"/app.js"}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		o.RegisterPeer(fmt.Sprintf("peer-%d", i), fmt.Sprintf("http://peer-%d.invalid", i), float64(10+i))
	}
	srv := httptest.NewServer(o.Handler())
	return o, srv, stats
}

// krWrapper pulls one pooled wrapper map over HTTP.
func krWrapper(t *testing.T, baseURL, client string) *nocdn.Wrapper {
	t.Helper()
	resp, err := http.Get(baseURL + "/wrapper?page=index&client=" + client)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /wrapper: %d %s", resp.StatusCode, body)
	}
	var w nocdn.Wrapper
	if err := json.Unmarshal(body, &w); err != nil {
		t.Fatal(err)
	}
	return &w
}

// assignProjection reduces a wrapper to its assignment decision — who serves
// what — stripping the per-issue fields (keys, nonce, timestamps) that are
// fresh by design. Byte-stable recovery means this projection is identical
// for the same client before and after a crash.
func assignProjection(w *nocdn.Wrapper) string {
	s := w.Container.Path + "=" + w.Container.PeerID
	for _, obj := range w.Objects {
		s += "|" + obj.Path + "=" + obj.PeerID
	}
	return s
}

// buildBatch signs n usage records under one of the wrapper's keys and
// commits them under a Merkle root, exactly as a flushing peer does. Claims
// are uniform 10-byte serves: honest traffic in this suite must stay well
// clear of the statistical auditor (deviation scoring) and the anomaly
// ratio, so any suspension the assertions see is a durability bug, not an
// audit false positive.
func buildBatch(t *testing.T, w *nocdn.Wrapper, rng *sim.RNG, nonceBase string, n int) (nocdn.RecordBatch, int64) {
	t.Helper()
	ids := make([]string, 0, len(w.Keys))
	for id := range w.Keys {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	peerID := ids[rng.Intn(len(ids))]
	key := w.Keys[peerID]
	secret, err := hex.DecodeString(key.Secret)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	records := make([]nocdn.UsageRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := nocdn.UsageRecord{
			Provider: "chaos.example",
			PeerID:   peerID,
			KeyID:    key.KeyID,
			Page:     "index",
			Bytes:    10,
			Objects:  1,
			Nonce:    fmt.Sprintf("%s-%d", nonceBase, i),
			IssuedAt: time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC),
		}
		rec.Sign(secret)
		total += rec.Bytes
		records = append(records, rec)
	}
	return nocdn.NewRecordBatch(peerID, records), total
}

// postBatch uploads one settlement batch, returning status and body.
func postBatch(baseURL string, b nocdn.RecordBatch) (int, string, error) {
	body, err := nocdn.EncodeBatch(b)
	if err != nil {
		return 0, "", err
	}
	resp, err := http.Post(baseURL+"/usage/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out), nil
}

// creditedFor reads one peer's ledger row over HTTP.
func creditedFor(t *testing.T, baseURL, peerID string) (credited int64, suspended bool) {
	t.Helper()
	resp, err := http.Get(baseURL + "/accounting?peer=" + peerID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acct nocdn.Accounting
	if err := json.NewDecoder(resp.Body).Decode(&acct); err != nil {
		t.Fatal(err)
	}
	return acct.CreditedBytes, acct.Suspended
}

// tearWALTail appends a partial frame to the newest journal file — the torn
// write a power cut leaves mid-append. Everything fsynced (every acked
// settlement under FsyncAlways) precedes it, so recovery must cut the tail
// without losing a single acked record.
func tearWALTail(t *testing.T, dir string) {
	t.Helper()
	logs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("no journal files to tear (err=%v)", err)
	}
	sort.Strings(logs)
	f, err := os.OpenFile(logs[len(logs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hWL1\x03\x00\x00\x00\x00\x00"))
	f.Close()
}

// TestKillRecoverChaos runs the kill-and-recover scenario under three seeds:
// settle several acked batches, race one final batch against the kill (its
// ack is considered lost), crash, tear the journal tail, recover, and assert
// exactly-once credit plus fleet convergence.
func TestKillRecoverChaos(t *testing.T) {
	for _, seed := range []uint64{1, 7, 1337} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runKillRecover(t, seed)
		})
	}
}

func runKillRecover(t *testing.T, seed uint64) {
	dir := t.TempDir()
	rng := sim.NewRNG(seed)
	_, srv, _ := chaosOrigin(t, dir, seed)

	// Phase 1: acked traffic. Every 200 here is a durability promise.
	expected := make(map[string]int64)
	stableClient := "client-stable"
	beforeProjection := assignProjection(krWrapper(t, srv.URL, stableClient))
	rounds := 3 + rng.Intn(4)
	for r := 0; r < rounds; r++ {
		w := krWrapper(t, srv.URL, fmt.Sprintf("client-%d", r))
		batch, total := buildBatch(t, w, rng, fmt.Sprintf("s%d-r%d", seed, r), rng.Intn(6)+2)
		status, body, err := postBatch(srv.URL, batch)
		if err != nil || status != http.StatusOK {
			t.Fatalf("round %d: POST /usage/batch: %d %s (%v)", r, status, body, err)
		}
		expected[batch.PeerID] += total
	}

	// Phase 2: the in-doubt batch. Its upload races the kill — the client
	// never trusts the ack. After recovery the retry must land exactly once.
	wLast := krWrapper(t, srv.URL, "client-indoubt")
	lastBatch, lastTotal := buildBatch(t, wLast, rng, fmt.Sprintf("s%d-indoubt", seed), rng.Intn(6)+2)
	posted := make(chan error, 1)
	go func() {
		_, _, err := postBatch(srv.URL, lastBatch)
		posted <- err
	}()
	// Kill: the server drains in-flight handlers and dies; the origin object
	// is abandoned with no Shutdown — its only legacy is the journal.
	srv.Close()
	<-posted
	expected[lastBatch.PeerID] += lastTotal

	// A power cut also tears whatever frame was mid-write.
	tearWALTail(t, dir)

	// Phase 3: recover and audit the books.
	o2, srv2, stats := chaosOrigin(t, dir, seed)
	defer srv2.Close()
	defer o2.Shutdown()
	if !stats.TruncatedTail {
		t.Fatal("recovery did not report the torn journal tail")
	}
	if stats.RecordsReplayed == 0 {
		t.Fatal("recovery replayed nothing")
	}

	// Retry the in-doubt batch: 200 if the kill beat the settle, 400 replay
	// if the settle won. Both are terminal for the peer.
	status, body, err := postBatch(srv2.URL, lastBatch)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK && status != http.StatusBadRequest {
		t.Fatalf("in-doubt retry: status %d %s, want 200 or 400", status, body)
	}

	// Exactly-once: per-peer credit equals bytes submitted, no more, no less.
	for peerID, want := range expected {
		credited, suspended := creditedFor(t, srv2.URL, peerID)
		if credited != want {
			t.Fatalf("peer %s credited %d after recovery, want exactly %d (retry status %d)",
				peerID, credited, want, status)
		}
		if suspended {
			t.Fatalf("peer %s suspended after honest traffic", peerID)
		}
	}

	// Replay attack: re-uploading an acked pre-crash batch must bounce.
	// (Phase 1 acks were trusted, so a second credit is theft.)
	wReplay := krWrapper(t, srv2.URL, "client-0")
	_ = wReplay
	replayStatus, _, err := postBatch(srv2.URL, lastBatch)
	if err != nil {
		t.Fatal(err)
	}
	if replayStatus != http.StatusBadRequest {
		t.Fatalf("replayed batch got %d, want 400", replayStatus)
	}

	// Byte-stable assignment: the same client maps to the same peers.
	afterProjection := assignProjection(krWrapper(t, srv2.URL, stableClient))
	if afterProjection != beforeProjection {
		t.Fatalf("assignment drifted across recovery:\n  before %s\n  after  %s", beforeProjection, afterProjection)
	}

	// Convergence: fresh traffic settles first try on the recovered origin.
	wNew := krWrapper(t, srv2.URL, "client-fresh")
	freshBatch, freshTotal := buildBatch(t, wNew, rng, fmt.Sprintf("s%d-fresh", seed), 3)
	status, body, err = postBatch(srv2.URL, freshBatch)
	if err != nil || status != http.StatusOK {
		t.Fatalf("fresh batch after recovery: %d %s (%v)", status, body, err)
	}
	credited, _ := creditedFor(t, srv2.URL, freshBatch.PeerID)
	if credited != expected[freshBatch.PeerID]+freshTotal {
		t.Fatalf("fresh settle credited %d, want %d", credited, expected[freshBatch.PeerID]+freshTotal)
	}

	// /debug/wal reads as a live, recovered control plane.
	resp, err := http.Get(srv2.URL + "/debug/wal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ws nocdn.WALStatus
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		t.Fatal(err)
	}
	if !ws.Attached || !ws.Recovery.TruncatedTail || ws.LastSeq == 0 {
		t.Fatalf("/debug/wal = %+v, want attached with recorded truncated-tail recovery", ws)
	}
}

// TestKillRecoverFlaggedPeerFault: a peer flagged on tamper evidence stays
// flagged and suspended across a kill — a crash must never quietly readmit
// a cheater.
func TestKillRecoverFlaggedPeerFault(t *testing.T) {
	dir := t.TempDir()
	o, srv, _ := chaosOrigin(t, dir, 42)
	o.Audit().FlagTampered("peer-3", fmt.Errorf("sampled leaf failed verification"))
	if _, suspended := creditedFor(t, srv.URL, "peer-3"); !suspended {
		t.Fatal("flag did not suspend peer-3 pre-crash")
	}
	srv.Close() // kill: no Shutdown, no final snapshot

	o2, srv2, _ := chaosOrigin(t, dir, 42)
	defer srv2.Close()
	defer o2.Shutdown()
	if _, suspended := creditedFor(t, srv2.URL, "peer-3"); !suspended {
		t.Fatal("suspension lost across recovery")
	}
	resp, err := http.Get(srv2.URL + "/debug/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap nocdn.AuditSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	flagged := false
	for _, pa := range snap.Peers {
		if pa.PeerID == "peer-3" && pa.Flagged {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("/debug/audit lost the tamper flag across recovery")
	}
}
