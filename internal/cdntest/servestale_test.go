package cdntest

// The serve-stale suite: stale-while-revalidate, stale-if-error during an
// origin outage, the hard edge of the stale windows, and the hash-epoch
// rule — a wrapper hash match makes an entry fresh at any age, a mismatch
// makes it unservable at any age. The last case drives the real loader
// through a brownout so the whole PR 5 + PR 7 interplay is certified
// end to end.

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"hpop/internal/nocdn"
)

func TestStaleWhileRevalidateServesImmediately(t *testing.T) {
	s := NewStack(t, Config{}) // max-age=60, swr=30
	body := []byte("swr payload")
	s.Publish("/swr.bin", body)

	s.WantXCache(0, "/swr.bin", nocdn.XCacheMiss)

	// Expired but inside the stale-while-revalidate window: the stale copy
	// is served immediately and the refresh happens off the request path.
	s.Clock.Advance(75 * time.Second)
	r := s.WantXCache(0, "/swr.bin", nocdn.XCacheStale)
	if !bytes.Equal(r.Body, body) {
		t.Fatalf("STALE body = %q, want %q", r.Body, body)
	}
	if r.Age() != 75 {
		t.Fatalf("STALE Age = %d, want 75", r.Age())
	}

	// The background revalidation lands shortly after; once it does, the
	// entry is fresh again and serves as a HIT.
	s.Eventually(func() bool {
		return s.GetOK(0, "/swr.bin").XCache() == nocdn.XCacheHit
	}, "background revalidation never refreshed the entry")
}

func TestStaleIfErrorServesDuringOriginOutage(t *testing.T) {
	s := NewStack(t, Config{}) // max-age=60, sie=300
	body := []byte("sie payload")
	s.Publish("/sie.bin", body)

	s.WantXCache(0, "/sie.bin", nocdn.XCacheMiss)

	// Expired beyond every fresh window, and the origin's content endpoint
	// is erroring: stale-if-error grants the stale serve instead of a 502.
	s.Clock.Advance(2 * time.Minute)
	s.OriginGate.ContentDown.Store(true)
	r := s.WantXCache(0, "/sie.bin", nocdn.XCacheStale)
	if !bytes.Equal(r.Body, body) {
		t.Fatalf("stale-if-error body = %q, want %q", r.Body, body)
	}

	// Origin back: the next serve revalidates normally.
	s.OriginGate.ContentDown.Store(false)
	s.WantXCache(0, "/sie.bin", nocdn.XCacheRevalidated)
}

func TestStaleBeyondEveryWindowFails(t *testing.T) {
	s := NewStack(t, Config{OriginOpts: []nocdn.OriginOption{
		nocdn.WithCachePolicy(10*time.Second, 0, 20*time.Second),
	}})
	body := []byte("bounded staleness")
	s.Publish("/bounded.bin", body)

	s.WantXCache(0, "/bounded.bin", nocdn.XCacheMiss)

	// Past max-age AND past stale-if-error: the grant is exhausted, so an
	// origin outage must surface as an error — never an arbitrarily old copy.
	s.Clock.Advance(31 * time.Second)
	s.OriginGate.ContentDown.Store(true)
	r := s.Get(0, "/bounded.bin")
	if r.Status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 beyond the stale-if-error window", r.Status)
	}
	if bytes.Contains(r.Body, body) {
		t.Fatalf("expired-beyond-window bytes leaked into the error response")
	}
}

// TestHashEpochGatesStale certifies the paper's freshness rule end to end:
// the wrapper hash — not the wall clock — is the authority for loader
// requests. An entry whose hash matches the current wrapper epoch is
// servable at any age even with the origin dark; an entry whose hash does
// not match is unservable at any age, stale windows notwithstanding.
func TestHashEpochGatesStale(t *testing.T) {
	s := NewStack(t, Config{})
	v1 := []byte("application v1")
	s.Publish("/app.js", v1)
	hashV1 := nocdn.HashBytes(v1)

	s.WantXCache(0, "/app.js", nocdn.XCacheMiss, nocdn.ExpectHashHeader, hashV1)

	// Far past max-age and stale-while-revalidate, origin fully dark: a
	// loader presenting the matching wrapper hash still gets the bytes —
	// the hash proves they are current, no revalidation required.
	s.Clock.Advance(2 * time.Minute)
	s.OriginGate.Down.Store(true)
	r := s.WantXCache(0, "/app.js", nocdn.XCacheStale, nocdn.ExpectHashHeader, hashV1)
	if !bytes.Equal(r.Body, v1) {
		t.Fatalf("hash-epoch stale serve body = %q, want %q", r.Body, v1)
	}

	// Publish v2: the wrapper epoch moves. A loader on the new epoch must
	// never receive the v1 bytes — with the content endpoint erroring, the
	// only correct answers are fresh v2 bytes or an error.
	s.OriginGate.Down.Store(false)
	v2 := []byte("application v2")
	s.Origin.AddObject("/app.js", v2)
	hashV2 := nocdn.HashBytes(v2)

	s.OriginGate.ContentDown.Store(true)
	r = s.Get(0, "/app.js", nocdn.ExpectHashHeader, hashV2)
	if r.Status != http.StatusBadGateway {
		t.Fatalf("epoch-mismatch status = %d, want 502 while the refetch cannot complete", r.Status)
	}
	if bytes.Contains(r.Body, v1) {
		t.Fatalf("superseded v1 bytes served to a v2-epoch loader")
	}

	// Content endpoint restored: the mismatch refetches and serves v2.
	s.OriginGate.ContentDown.Store(false)
	r = s.WantXCache(0, "/app.js", nocdn.XCacheMiss, nocdn.ExpectHashHeader, hashV2)
	if !bytes.Equal(r.Body, v2) {
		t.Fatalf("post-refetch body = %q, want %q", r.Body, v2)
	}
	s.WantXCache(0, "/app.js", nocdn.XCacheHit, nocdn.ExpectHashHeader, hashV2)
}

// TestBrownoutServeStaleInterplay drives the real loader through an origin
// content brownout: the wrapper endpoint stays up, /content is dark, and
// every peer's cached copy is long expired. Because the wrapper epoch is
// unchanged, hash-epoch freshness lets the peers serve their (wall-clock
// stale) copies and the page loads fully — no fallback, no degradation.
func TestBrownoutServeStaleInterplay(t *testing.T) {
	s := NewStack(t, Config{
		Peers: 2,
		OriginOpts: []nocdn.OriginOption{
			nocdn.WithWrapperReuse(10 * time.Minute),
		},
	})
	container := []byte("<html>brownout page</html>")
	script := []byte("console.log('brownout')")
	s.Publish("/page.html", container)
	s.Publish("/b.js", script)
	s.PublishPage("front", "/page.html", "/b.js")

	loader := s.Loader()
	loader.Brownout = true

	res, err := loader.LoadPage("front")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Body) != 2 || res.TamperDetected {
		t.Fatalf("warm load result = %+v", res)
	}

	// Every peer copy expires past max-age + swr; only /content goes dark.
	s.Clock.Advance(2 * time.Minute)
	s.OriginGate.ContentDown.Store(true)

	res, err = loader.LoadPage("front")
	if err != nil {
		t.Fatalf("brownout load failed: %v", err)
	}
	if len(res.FallbackObjects) != 0 || len(res.Degraded) != 0 {
		t.Fatalf("brownout load fell back (fallback=%v degraded=%v); hash-epoch stale serves should have covered it",
			res.FallbackObjects, res.Degraded)
	}
	if !bytes.Equal(res.Body["/page.html"], container) || !bytes.Equal(res.Body["/b.js"], script) {
		t.Fatalf("brownout load bodies = %v", res.Body)
	}
}
