// control_test.go — acceptance suite for the sharded control plane: pooled
// client assignment over HTTP, audit-driven ejection of pooled maps, and
// Merkle-batched settlement with sampled-leaf verification. Like the rest
// of cdntest, everything observable rides real HTTP: wrappers come from GET
// /wrapper, settlement goes through POST /usage/batch, and verdicts are
// read from /debug/audit.
package cdntest

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"hpop/internal/nocdn"
)

// fetchWrapper GETs one pooled wrapper for (page, client) and returns it
// with the raw body (byte-identical bodies mean the same pooled map).
func fetchWrapper(t *testing.T, s *Stack, page, client string) (*nocdn.Wrapper, []byte) {
	t.Helper()
	resp, err := http.Get(s.OriginSrv.URL + "/wrapper?page=" + page + "&client=" + client)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /wrapper for %s/%s: status %d (%s)", page, client, resp.StatusCode, body)
	}
	var w nocdn.Wrapper
	if err := json.Unmarshal(body, &w); err != nil {
		t.Fatal(err)
	}
	return &w, body
}

// auditRow fetches /debug/audit and returns one peer's row (nil if absent).
func auditRow(t *testing.T, s *Stack, peerID string) *nocdn.PeerAudit {
	t.Helper()
	resp, err := http.Get(s.OriginSrv.URL + "/debug/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap nocdn.AuditSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for i := range snap.Peers {
		if snap.Peers[i].PeerID == peerID {
			return &snap.Peers[i]
		}
	}
	return nil
}

func publishControlPage(s *Stack) {
	s.Publish("/index.html", []byte("<html>control plane</html>"))
	s.Publish("/app.js", bytes.Repeat([]byte("j"), 2000))
	s.PublishPage("cp", "/index.html", "/app.js")
}

// TestAssignmentStabilityWithinEpoch: the same client asking for the same
// page gets the byte-identical pooled wrapper across requests — stable peer
// maps are what let the audit hold claims against a fixed expectation — and
// a different client's map, whatever slot it hashes to, is equally stable.
func TestAssignmentStabilityWithinEpoch(t *testing.T) {
	s := NewStack(t, Config{Peers: 5})
	publishControlPage(s)

	_, first := fetchWrapper(t, s, "cp", "alice")
	for i := 0; i < 3; i++ {
		_, again := fetchWrapper(t, s, "cp", "alice")
		if !bytes.Equal(first, again) {
			t.Fatalf("request %d: alice's wrapper changed within the epoch", i)
		}
	}
	_, bob := fetchWrapper(t, s, "cp", "bob")
	if _, again := fetchWrapper(t, s, "cp", "bob"); !bytes.Equal(bob, again) {
		t.Fatal("bob's wrapper changed within the epoch")
	}

	// A page view through the loader under a client identity works end to
	// end against the pooled map.
	l := s.Loader()
	l.ClientID = "alice"
	res, err := l.LoadPage("cp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Body["/app.js"]) != 2000 {
		t.Fatalf("assembled %d bytes of /app.js, want 2000", len(res.Body["/app.js"]))
	}
}

// TestEjectionRemovesPeerFromPooledMaps: a peer caught by the sampled-leaf
// check is flagged in /debug/audit and disappears from pooled wrapper maps
// on the very next request — no epoch tick needed.
func TestEjectionRemovesPeerFromPooledMaps(t *testing.T) {
	s := NewStack(t, Config{Peers: 5})
	publishControlPage(s)

	w, _ := fetchWrapper(t, s, "cp", "alice")
	victim := ""
	for id := range w.Keys {
		if victim == "" || id < victim {
			victim = id
		}
	}
	secret, err := hex.DecodeString(w.Keys[victim].Secret)
	if err != nil {
		t.Fatal(err)
	}
	// Sign an honest record, inflate it afterwards, and commit the Merkle
	// root over the inflated bytes: the root verifies, the sampled leaf's
	// signature cannot.
	rec := nocdn.UsageRecord{
		Provider: s.Provider, PeerID: victim, KeyID: w.Keys[victim].KeyID,
		Page: "cp", Bytes: 2000, Objects: 1, Nonce: "tamper-1", IssuedAt: s.Clock.Now(),
	}
	rec.Sign(secret)
	rec.Bytes *= 2
	body, err := nocdn.EncodeBatch(nocdn.NewRecordBatch(victim, []nocdn.UsageRecord{rec}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.OriginSrv.URL+"/usage/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered batch: status %d (%s), want 400", resp.StatusCode, msg)
	}

	row := auditRow(t, s, victim)
	if row == nil || !row.Flagged {
		t.Fatalf("victim %s not flagged in /debug/audit: %+v", victim, row)
	}
	if acct := s.Origin.AccountingFor(victim); acct.CreditedBytes != 0 || !acct.Suspended {
		t.Fatalf("victim accounting after tamper: %+v", acct)
	}

	w2, _ := fetchWrapper(t, s, "cp", "alice")
	if _, still := w2.Keys[victim]; still {
		t.Fatalf("ejected peer %s still in alice's pooled map", victim)
	}
	for _, ref := range append([]nocdn.ObjectRef{w2.Container}, w2.Objects...) {
		if ref.PeerID == victim {
			t.Fatalf("ejected peer %s still assigned %s", victim, ref.Path)
		}
	}
}

// TestBatchSettlementCreditsOverHTTP: a real page view through peers, then
// each peer's flush rides POST /usage/batch; the ledger credits exactly one
// page's bytes and nobody is suspended. A replayed flush cannot double-pay
// (the batch root's nonce is spent).
func TestBatchSettlementCreditsOverHTTP(t *testing.T) {
	s := NewStack(t, Config{Peers: 2})
	publishControlPage(s)

	l := s.Loader()
	l.ClientID = "carol"
	res, err := l.LoadPage("cp")
	if err != nil {
		t.Fatal(err)
	}
	uploaded := 0
	for _, p := range s.Peers {
		n, err := p.Flush(s.OriginSrv.URL)
		if err != nil {
			t.Fatal(err)
		}
		uploaded += n
	}
	if uploaded != res.RecordsDelivered {
		t.Fatalf("uploaded %d records, loader delivered %d", uploaded, res.RecordsDelivered)
	}
	var credited int64
	for _, p := range s.Peers {
		acct := s.Origin.AccountingFor(p.ID)
		credited += acct.CreditedBytes
		if acct.Suspended {
			t.Fatalf("honest peer %s suspended: %+v", p.ID, acct)
		}
		if acct.Rejected != 0 {
			t.Fatalf("honest peer %s had %d rejections", p.ID, acct.Rejected)
		}
	}
	total, err := s.Origin.TotalPageBytes("cp")
	if err != nil {
		t.Fatal(err)
	}
	if credited != total {
		t.Fatalf("credited %d bytes, page is %d", credited, total)
	}
}

// TestSampledSettlementMismatchFlagsInAudit: the full pipeline version of
// the tamper case — peers serve a real page view, inflate their queued
// records after signing, and flush. The Merkle root they commit to matches
// the inflated records, so only sampled signature verification can catch
// it; it does, and /debug/audit shows every cheating uploader flagged with
// zero credit.
func TestSampledSettlementMismatchFlagsInAudit(t *testing.T) {
	s := NewStack(t, Config{Peers: 2})
	publishControlPage(s)

	l := s.Loader()
	l.ClientID = "dave"
	if _, err := l.LoadPage("cp"); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Peers {
		p.InflateRecords()
	}
	flagged := 0
	for _, p := range s.Peers {
		n, err := p.Flush(s.OriginSrv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			continue // this peer served nothing, nothing to cheat with
		}
		row := auditRow(t, s, p.ID)
		if row == nil || !row.Flagged {
			t.Fatalf("cheating peer %s not flagged in /debug/audit: %+v", p.ID, row)
		}
		if acct := s.Origin.AccountingFor(p.ID); acct.CreditedBytes != 0 {
			t.Fatalf("cheating peer %s credited %d bytes", p.ID, acct.CreditedBytes)
		}
		flagged++
	}
	if flagged == 0 {
		t.Fatal("no peer uploaded a tampered batch — test exercised nothing")
	}
}

// TestEpochTickKeepsServingPooledMaps: ticks refresh pooled maps in the
// background; clients keep getting valid wrappers (possibly remapped), and
// between ticks the map is stable again.
func TestEpochTickKeepsServingPooledMaps(t *testing.T) {
	s := NewStack(t, Config{Peers: 4})
	publishControlPage(s)

	for i := 0; i < 3; i++ {
		client := fmt.Sprintf("client-%d", i)
		if w, _ := fetchWrapper(t, s, "cp", client); len(w.Keys) == 0 {
			t.Fatalf("client %s got an empty map", client)
		}
	}
	s.Origin.EpochTick()
	s.Clock.Advance(time.Second)
	_, a := fetchWrapper(t, s, "cp", "client-0")
	_, b := fetchWrapper(t, s, "cp", "client-0")
	if !bytes.Equal(a, b) {
		t.Fatal("map not stable again after the tick")
	}
}
