package cdntest

// The failover suite: where the bytes come from when a peer or the origin
// drops out — replica peers first, origin fallback last, and warm peers
// riding out a full origin outage.

import (
	"bytes"
	"testing"
	"time"

	"hpop/internal/nocdn"
)

func TestFailoverToReplicaPeer(t *testing.T) {
	s := NewStack(t, Config{
		Peers:    3,
		Replicas: 2,
		OriginOpts: []nocdn.OriginOption{
			// Pin the wrapper so the assignment we inspect below is exactly
			// the one the loader receives.
			nocdn.WithWrapperReuse(time.Minute),
		},
	})
	container := []byte("<html>replicated</html>")
	s.Publish("/page.html", container)
	s.PublishPage("front", "/page.html")

	w, err := s.Origin.GenerateWrapper("front")
	if err != nil {
		t.Fatal(err)
	}
	primary := w.Container.PeerID
	if len(w.Container.Replicas) == 0 {
		t.Fatalf("wrapper carries no replicas: %+v", w.Container)
	}
	for i, p := range s.Peers {
		if p.ID == primary {
			s.PeerGates[i].Down.Store(true)
		}
	}

	res, err := s.Loader().LoadPage("front")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FallbackObjects) != 0 {
		t.Fatalf("fell back to origin %v; a replica peer should have served", res.FallbackObjects)
	}
	if !bytes.Equal(res.Body["/page.html"], container) {
		t.Fatalf("body = %q, want %q", res.Body["/page.html"], container)
	}
	if n := res.PeerBytes[primary]; n != 0 {
		t.Fatalf("dead primary %s credited %d bytes", primary, n)
	}
	var replicaBytes int64
	for _, n := range res.PeerBytes {
		replicaBytes += n
	}
	if replicaBytes != int64(len(container)) {
		t.Fatalf("replica bytes = %d, want %d", replicaBytes, len(container))
	}
}

func TestFailoverToOriginWhenAllPeersDown(t *testing.T) {
	s := NewStack(t, Config{Peers: 2})
	container := []byte("<html>origin of last resort</html>")
	s.Publish("/page.html", container)
	s.PublishPage("front", "/page.html")

	for _, g := range s.PeerGates {
		g.Down.Store(true)
	}

	res, err := s.Loader().LoadPage("front")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FallbackObjects) != 1 || res.FallbackObjects[0] != "/page.html" {
		t.Fatalf("fallback objects = %v, want [/page.html]", res.FallbackObjects)
	}
	if !bytes.Equal(res.Body["/page.html"], container) {
		t.Fatalf("body = %q, want %q", res.Body["/page.html"], container)
	}
	if res.TamperDetected {
		t.Fatal("peer outage misreported as tampering")
	}
}

func TestOriginOutageWarmPeersStillServe(t *testing.T) {
	s := NewStack(t, Config{})
	body := []byte("survives the outage")
	s.Publish("/warm.bin", body)

	s.WantXCache(0, "/warm.bin", nocdn.XCacheMiss)

	// Whole origin dark — wrapper and content. A fresh cached copy needs
	// no origin round trip, so the edge keeps serving.
	s.OriginGate.Down.Store(true)
	s.Clock.Advance(30 * time.Second)
	r := s.WantXCache(0, "/warm.bin", nocdn.XCacheHit)
	if !bytes.Equal(r.Body, body) {
		t.Fatalf("outage HIT body = %q, want %q", r.Body, body)
	}
}

func TestColdPeerBackfillsFromOrigin(t *testing.T) {
	s := NewStack(t, Config{Peers: 2})
	body := []byte("warm here, cold there")
	s.Publish("/split.bin", body)

	// Warm only peer 0; peer 1 has never seen the object.
	s.WantXCache(0, "/split.bin", nocdn.XCacheMiss)
	s.WantXCache(0, "/split.bin", nocdn.XCacheHit)

	// A cold peer is not an outage: it backfills from the origin and serves.
	r := s.WantXCache(1, "/split.bin", nocdn.XCacheMiss)
	if !bytes.Equal(r.Body, body) {
		t.Fatalf("cold peer body = %q, want %q", r.Body, body)
	}
	if got := s.Peers[1].OriginFetches(); got != 1 {
		t.Fatalf("cold peer origin fetches = %d, want 1", got)
	}
	s.WantXCache(1, "/split.bin", nocdn.XCacheHit)
}
