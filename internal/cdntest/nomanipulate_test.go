package cdntest

// The no-manipulation suite: the peer tier must be byte- and
// header-transparent, and when a peer does tamper, the loader's hash
// verification must keep the corrupted bytes from ever being rendered.

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"hpop/internal/nocdn"
)

func TestBodyPassThroughByteIdentical(t *testing.T) {
	s := NewStack(t, Config{})
	// Every byte value, repeated: any transcoding, trimming, or charset
	// mangling in the peer tier shows up as an inequality.
	body := make([]byte, 1024)
	for i := range body {
		body[i] = byte(i)
	}
	s.Publish("/all-bytes.bin", body)

	r := s.WantXCache(0, "/all-bytes.bin", nocdn.XCacheMiss)
	if !bytes.Equal(r.Body, body) {
		t.Fatal("MISS body not byte-identical to origin")
	}
	r = s.WantXCache(0, "/all-bytes.bin", nocdn.XCacheHit)
	if !bytes.Equal(r.Body, body) {
		t.Fatal("HIT body not byte-identical to origin")
	}
}

func TestContentTypePreserved(t *testing.T) {
	s := NewStack(t, Config{})
	s.Origin.AddObjectWithType("/blob", []byte{0x01, 0x02, 0x03}, "application/x-custom")
	s.Publish("/style.css", []byte("body { margin: 0 }"))

	for _, want := range []string{nocdn.XCacheMiss, nocdn.XCacheHit} {
		r := s.WantXCache(0, "/blob", want)
		if ct := r.Header.Get("Content-Type"); ct != "application/x-custom" {
			t.Fatalf("%s Content-Type = %q, want application/x-custom", want, ct)
		}
		r = s.WantXCache(0, "/style.css", want)
		if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/css") {
			t.Fatalf("%s Content-Type = %q, want text/css*", want, ct)
		}
	}
}

func TestOriginHeadersPreservedOnCacheServes(t *testing.T) {
	s := NewStack(t, Config{})
	body := []byte("header fidelity")
	s.Publish("/h.bin", body)
	wantETag := `"` + nocdn.HashBytes(body) + `"`

	s.WantXCache(0, "/h.bin", nocdn.XCacheMiss)
	r := s.WantXCache(0, "/h.bin", nocdn.XCacheHit)
	if got := r.Header.Get("ETag"); got != wantETag {
		t.Fatalf("HIT ETag = %q, want %q", got, wantETag)
	}
	wantCC := "max-age=60, stale-while-revalidate=30, stale-if-error=300"
	if got := r.Header.Get("Cache-Control"); got != wantCC {
		t.Fatalf("HIT Cache-Control = %q, want %q", got, wantCC)
	}
	if got := r.Header.Get(nocdn.ExpectHashHeader); got != nocdn.HashBytes(body) {
		t.Fatalf("HIT %s = %q, want the object hash", nocdn.ExpectHashHeader, got)
	}
}

func TestTamperedPeerDetectedAndBypassed(t *testing.T) {
	s := NewStack(t, Config{})
	container := []byte("<html>integrity matters</html>")
	s.Publish("/page.html", container)
	s.PublishPage("front", "/page.html")
	s.Peers[0].Tamper.Store(true)

	res, err := s.Loader().LoadPage("front")
	if err != nil {
		t.Fatal(err)
	}
	if !res.TamperDetected {
		t.Fatal("tampering went undetected")
	}
	if len(res.FallbackObjects) != 1 || res.FallbackObjects[0] != "/page.html" {
		t.Fatalf("fallback objects = %v, want [/page.html]", res.FallbackObjects)
	}
	if !bytes.Equal(res.Body["/page.html"], container) {
		t.Fatalf("rendered body = %q, want the origin's bytes", res.Body["/page.html"])
	}
	if n := res.PeerBytes[s.Peers[0].ID]; n != 0 {
		t.Fatalf("tampering peer credited %d bytes", n)
	}
}

// TestTamperedBytesNeverRendered is the hard guarantee: with every peer
// tampering, whatever a peer hands over fails verification, and the loader
// renders only origin bytes — or, when the origin cannot help either,
// nothing at all. Modified bytes never reach a Body entry.
func TestTamperedBytesNeverRendered(t *testing.T) {
	s := NewStack(t, Config{Peers: 2})
	container := []byte("<html>authentic</html>")
	s.Publish("/page.html", container)
	s.PublishPage("front", "/page.html")
	for _, p := range s.Peers {
		p.Tamper.Store(true)
	}

	// The raw peer response really is corrupted — this is not a vacuous test.
	raw := s.GetOK(0, "/page.html")
	if nocdn.HashBytes(raw.Body) == nocdn.HashBytes(container) {
		t.Fatal("tamper mode served unmodified bytes; the scenario is vacuous")
	}

	loader := s.Loader()
	loader.Brownout = true
	res, err := loader.LoadPage("front")
	if err != nil {
		t.Fatal(err)
	}
	if !res.TamperDetected {
		t.Fatal("tampering went undetected")
	}
	if !bytes.Equal(res.Body["/page.html"], container) {
		t.Fatalf("rendered body = %q, want the origin's bytes", res.Body["/page.html"])
	}

	// Origin content dark too: the only acceptable outcome is a degraded
	// page with NO body entry — never the tampered copy.
	s.OriginGate.ContentDown.Store(true)
	res, err = loader.LoadPage("front")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != 1 || res.Degraded[0] != "/page.html" {
		t.Fatalf("degraded = %v, want [/page.html]", res.Degraded)
	}
	if body, ok := res.Body["/page.html"]; ok {
		t.Fatalf("degraded object still produced a body (%d bytes) — unverified bytes rendered", len(body))
	}
}

func TestRangeServedFromVerifiedCache(t *testing.T) {
	s := NewStack(t, Config{})
	body := make([]byte, 1000)
	for i := range body {
		body[i] = byte(i % 251)
	}
	s.Publish("/ranged.bin", body)

	s.WantXCache(0, "/ranged.bin", nocdn.XCacheMiss)
	r := s.Get(0, "/ranged.bin", "Range", "bytes=100-199")
	if r.Status != http.StatusPartialContent {
		t.Fatalf("range status = %d, want 206", r.Status)
	}
	if want := fmt.Sprintf("bytes 100-199/%d", len(body)); r.Header.Get("Content-Range") != want {
		t.Fatalf("Content-Range = %q, want %q", r.Header.Get("Content-Range"), want)
	}
	if !bytes.Equal(r.Body, body[100:200]) {
		t.Fatal("range bytes differ from the origin slice")
	}
}
