package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCleanPaths(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"/a/b", "/a/b", false},
		{"a/b", "/a/b", false},
		{"/a/b/", "/a/b", false},
		{"/a/./b", "/a/b", false},
		{"/", "/", false},
		{"", "", true},
		{"/../x", "/x", false}, // path.Clean resolves within root
	}
	for _, c := range cases {
		got, err := Clean(c.in)
		if c.err != (err != nil) {
			t.Errorf("Clean(%q) err = %v", c.in, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteReadStat(t *testing.T) {
	fs := New()
	info, err := fs.Write("/hello.txt", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Size != 5 || info.IsDir {
		t.Errorf("info = %+v", info)
	}
	data, err := fs.Read("/hello.txt")
	if err != nil || string(data) != "world" {
		t.Fatalf("Read = %q, %v", data, err)
	}
	st, err := fs.Stat("/hello.txt")
	if err != nil || st.ETag != info.ETag {
		t.Errorf("Stat etag mismatch: %v vs %v", st.ETag, info.ETag)
	}
	if !fs.Exists("/hello.txt") || fs.Exists("/nope") {
		t.Error("Exists wrong")
	}
}

func TestWriteVersionsAndETags(t *testing.T) {
	fs := New()
	i1, _ := fs.Write("/f", []byte("v1"))
	i2, _ := fs.Write("/f", []byte("v2"))
	if i2.Version != 2 {
		t.Errorf("version = %d, want 2", i2.Version)
	}
	if i1.ETag == i2.ETag {
		t.Error("etag did not change on write")
	}
	// Same content, different version: etag still differs (version-salted).
	i3, _ := fs.Write("/f", []byte("v1"))
	if i3.ETag == i1.ETag {
		t.Error("etag reused across versions")
	}
}

func TestHistory(t *testing.T) {
	fs := New(WithMaxHistory(2))
	fs.Write("/f", []byte("a"))
	fs.Write("/f", []byte("b"))
	fs.Write("/f", []byte("c"))
	fs.Write("/f", []byte("d"))
	h, err := fs.History("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 {
		t.Fatalf("history len = %d, want 2 (bounded)", len(h))
	}
	if string(h[0].Data) != "b" || string(h[1].Data) != "c" {
		t.Errorf("history = %q, %q", h[0].Data, h[1].Data)
	}
	got, err := fs.ReadVersion("/f", 3)
	if err != nil || string(got) != "c" {
		t.Errorf("ReadVersion(3) = %q, %v", got, err)
	}
	cur, err := fs.ReadVersion("/f", 4)
	if err != nil || string(cur) != "d" {
		t.Errorf("ReadVersion(current) = %q, %v", cur, err)
	}
	if _, err := fs.ReadVersion("/f", 99); err != ErrNoSuchVersion {
		t.Errorf("missing version err = %v", err)
	}
}

func TestWriteIfMatch(t *testing.T) {
	fs := New()
	// Empty etag: create-only.
	if _, err := fs.WriteIfMatch("/f", []byte("a"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteIfMatch("/f", []byte("x"), ""); err != ErrExists {
		t.Errorf("create-over-existing err = %v", err)
	}
	st, _ := fs.Stat("/f")
	if _, err := fs.WriteIfMatch("/f", []byte("b"), st.ETag); err != nil {
		t.Errorf("matching etag write: %v", err)
	}
	var conflict *ConflictError
	if _, err := fs.WriteIfMatch("/f", []byte("c"), st.ETag); !errors.As(err, &conflict) {
		t.Errorf("stale etag err = %v, want ConflictError", err)
	} else if conflict.Path != "/f" || conflict.Error() == "" {
		t.Errorf("conflict detail: %+v", conflict)
	}
	if _, err := fs.WriteIfMatch("/missing", []byte("x"), "\"1-zz\""); err != ErrNotFound {
		t.Errorf("missing file err = %v", err)
	}
}

func TestMkdirAndNesting(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/docs"); err != ErrExists {
		t.Errorf("dup mkdir err = %v", err)
	}
	if err := fs.Mkdir("/a/b/c"); err != ErrNotFound {
		t.Errorf("missing parent err = %v", err)
	}
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Errorf("idempotent MkdirAll: %v", err)
	}
	if _, err := fs.Write("/a/b/c/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// MkdirAll through a file fails.
	if err := fs.MkdirAll("/a/b/c/f/g"); err != ErrNotDir {
		t.Errorf("MkdirAll through file err = %v", err)
	}
	if err := fs.Mkdir("x"); err != nil {
		t.Errorf("relative path mkdir: %v", err)
	}
}

func TestReadWriteErrors(t *testing.T) {
	fs := New()
	fs.Mkdir("/d")
	if _, err := fs.Read("/d"); err != ErrIsDir {
		t.Errorf("read dir err = %v", err)
	}
	if _, err := fs.Write("/d", []byte("x")); err != ErrIsDir {
		t.Errorf("write over dir err = %v", err)
	}
	if _, err := fs.Write("/", []byte("x")); err != ErrRootImmutable {
		t.Errorf("write root err = %v", err)
	}
	if _, err := fs.Read("/missing"); err != ErrNotFound {
		t.Errorf("read missing err = %v", err)
	}
	if _, err := fs.Write("/no/parent", []byte("x")); err != ErrNotFound {
		t.Errorf("no parent err = %v", err)
	}
	if _, err := fs.Write("", []byte("x")); err != ErrBadPath {
		t.Errorf("bad path err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d/sub")
	fs.Write("/d/sub/f", []byte("x"))
	if err := fs.Delete("/d", false); err != ErrDirNotEmpty {
		t.Errorf("non-recursive delete err = %v", err)
	}
	if err := fs.Delete("/d", true); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d") {
		t.Error("subtree survived recursive delete")
	}
	if err := fs.Delete("/d", false); err != ErrNotFound {
		t.Errorf("double delete err = %v", err)
	}
	if err := fs.Delete("/", true); err != ErrRootImmutable {
		t.Errorf("delete root err = %v", err)
	}
}

func TestListSortedAndWalk(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w/a")
	fs.Write("/w/z", []byte("1"))
	fs.Write("/w/b", []byte("2"))
	fs.Write("/w/a/c", []byte("3"))
	ls, err := fs.List("/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 3 || ls[0].Name != "a" || ls[1].Name != "b" || ls[2].Name != "z" {
		t.Errorf("List = %+v", ls)
	}
	if _, err := fs.List("/w/z"); err != ErrNotDir {
		t.Errorf("List(file) err = %v", err)
	}
	var visited []string
	if err := fs.Walk("/w", func(i Info) error {
		visited = append(visited, i.Path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"/w", "/w/a", "/w/a/c", "/w/b", "/w/z"}
	if fmt.Sprint(visited) != fmt.Sprint(want) {
		t.Errorf("Walk order = %v, want %v", visited, want)
	}
	sentinel := errors.New("stop")
	err = fs.Walk("/w", func(Info) error { return sentinel })
	if err != sentinel {
		t.Errorf("Walk error propagation = %v", err)
	}
}

func TestCopy(t *testing.T) {
	fs := New()
	fs.MkdirAll("/src/sub")
	fs.Write("/src/f", []byte("data"))
	fs.Write("/src/sub/g", []byte("nested"))
	fs.SetProp("/src/f", "dav:author", "alice")
	if err := fs.Copy("/src", "/dst", false); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/dst/sub/g")
	if err != nil || string(got) != "nested" {
		t.Fatalf("copied nested read = %q, %v", got, err)
	}
	v, ok, _ := fs.Prop("/dst/f", "dav:author")
	if !ok || v != "alice" {
		t.Error("props not copied")
	}
	// Copy is deep: mutating the copy leaves the source alone.
	fs.Write("/dst/f", []byte("changed"))
	orig, _ := fs.Read("/src/f")
	if string(orig) != "data" {
		t.Error("copy aliased source data")
	}
	if err := fs.Copy("/src", "/dst", false); err != ErrExists {
		t.Errorf("no-overwrite copy err = %v", err)
	}
	if err := fs.Copy("/src", "/dst", true); err != nil {
		t.Errorf("overwrite copy err = %v", err)
	}
	if err := fs.Copy("/src", "/src/inside", false); err != ErrBadPath {
		t.Errorf("copy into self err = %v", err)
	}
	if err := fs.Copy("/missing", "/x", false); err != ErrNotFound {
		t.Errorf("copy missing err = %v", err)
	}
}

func TestMove(t *testing.T) {
	fs := New()
	fs.MkdirAll("/a")
	fs.Write("/a/f", []byte("x"))
	if err := fs.Move("/a/f", "/a/g", false); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/f") || !fs.Exists("/a/g") {
		t.Error("move did not relocate file")
	}
	fs.Write("/a/h", []byte("y"))
	if err := fs.Move("/a/g", "/a/h", false); err != ErrExists {
		t.Errorf("no-overwrite move err = %v", err)
	}
	if err := fs.Move("/a/g", "/a/h", true); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.Read("/a/h")
	if string(got) != "x" {
		t.Errorf("moved content = %q", got)
	}
	if err := fs.Move("/a", "/a/inside", false); err != ErrBadPath {
		t.Errorf("move into self err = %v", err)
	}
	if err := fs.Move("/", "/x", false); err != ErrRootImmutable {
		t.Errorf("move root err = %v", err)
	}
}

func TestProps(t *testing.T) {
	fs := New()
	fs.Write("/f", []byte("x"))
	if err := fs.SetProp("/f", "ns:color", "blue"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := fs.Prop("/f", "ns:color")
	if err != nil || !ok || v != "blue" {
		t.Errorf("Prop = %q %v %v", v, ok, err)
	}
	all, _ := fs.Props("/f")
	if len(all) != 1 {
		t.Errorf("Props = %v", all)
	}
	fs.RemoveProp("/f", "ns:color")
	_, ok, _ = fs.Prop("/f", "ns:color")
	if ok {
		t.Error("prop survived removal")
	}
	if err := fs.SetProp("/missing", "a", "b"); err != ErrNotFound {
		t.Errorf("SetProp missing err = %v", err)
	}
}

func TestTotalBytes(t *testing.T) {
	fs := New()
	fs.MkdirAll("/a/b")
	fs.Write("/a/x", make([]byte, 100))
	fs.Write("/a/b/y", make([]byte, 50))
	if got := fs.TotalBytes(); got != 150 {
		t.Errorf("TotalBytes = %d, want 150", got)
	}
}

func TestClockInjection(t *testing.T) {
	fixed := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	fs := New(WithClock(func() time.Time { return fixed }))
	info, _ := fs.Write("/f", []byte("x"))
	if !info.ModTime.Equal(fixed) {
		t.Errorf("ModTime = %v, want %v", info.ModTime, fixed)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	fs.MkdirAll("/c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := fmt.Sprintf("/c/f%d", id)
			for j := 0; j < 100; j++ {
				fs.Write(p, []byte(fmt.Sprintf("%d-%d", id, j)))
				fs.Read(p)
				fs.Stat(p)
				fs.List("/c")
			}
		}(i)
	}
	wg.Wait()
	ls, _ := fs.List("/c")
	if len(ls) != 8 {
		t.Errorf("files after concurrent writes = %d, want 8", len(ls))
	}
}

// Property: write-then-read returns identical bytes for arbitrary content.
func TestWriteReadProperty(t *testing.T) {
	fs := New()
	f := func(data []byte) bool {
		if _, err := fs.Write("/p", data); err != nil {
			return false
		}
		got, err := fs.Read("/p")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: version numbers increase strictly monotonically under writes.
func TestVersionMonotoneProperty(t *testing.T) {
	fs := New()
	last := 0
	f := func(data []byte) bool {
		info, err := fs.Write("/m", data)
		if err != nil {
			return false
		}
		ok := info.Version == last+1
		last = info.Version
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := New()
	src.MkdirAll("/photos/2026")
	src.Write("/photos/2026/cat.jpg", []byte("meow-bytes"))
	src.Write("/photos/readme.txt", []byte("family photos"))
	src.SetProp("/photos/readme.txt", "ns:author", "alice")
	src.MkdirAll("/photos/empty-dir")

	blob, err := src.Snapshot("/photos")
	if err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.RestoreSnapshot(blob, "/restored"); err != nil {
		t.Fatal(err)
	}
	data, err := dst.Read("/restored/2026/cat.jpg")
	if err != nil || string(data) != "meow-bytes" {
		t.Fatalf("nested file = %q, %v", data, err)
	}
	v, ok, _ := dst.Prop("/restored/readme.txt", "ns:author")
	if !ok || v != "alice" {
		t.Error("props not restored")
	}
	if !dst.Exists("/restored/empty-dir") {
		t.Error("empty dir not restored")
	}
}

func TestSnapshotWholeTree(t *testing.T) {
	src := New()
	src.Write("/a", []byte("1"))
	src.MkdirAll("/d")
	src.Write("/d/b", []byte("2"))
	blob, err := src.Snapshot("/")
	if err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.RestoreSnapshot(blob, "/"); err != nil {
		t.Fatal(err)
	}
	for p, want := range map[string]string{"/a": "1", "/d/b": "2"} {
		got, err := dst.Read(p)
		if err != nil || string(got) != want {
			t.Errorf("%s = %q, %v", p, got, err)
		}
	}
}

func TestSnapshotOverwritesExisting(t *testing.T) {
	src := New()
	src.Write("/f", []byte("new"))
	blob, _ := src.Snapshot("/")
	dst := New()
	dst.Write("/f", []byte("old"))
	if err := dst.RestoreSnapshot(blob, "/"); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Read("/f")
	if string(got) != "new" {
		t.Errorf("restored = %q", got)
	}
}

func TestSnapshotErrors(t *testing.T) {
	fs := New()
	if _, err := fs.Snapshot("/missing"); err != ErrNotFound {
		t.Errorf("missing root err = %v", err)
	}
	if err := fs.RestoreSnapshot([]byte("garbage"), "/x"); err == nil {
		t.Error("garbage blob accepted")
	}
	if _, err := fs.Snapshot(""); err != ErrBadPath {
		t.Errorf("bad path err = %v", err)
	}
}

// Property: snapshot+restore preserves every file byte-for-byte.
func TestSnapshotProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := seededRNG(seed)
		src := New()
		src.MkdirAll("/p/q")
		files := map[string][]byte{}
		for i := 0; i < 10; i++ {
			data := make([]byte, rng()%2048)
			for j := range data {
				data[j] = byte(rng())
			}
			path := fmt.Sprintf("/p/f%d", i)
			if i%3 == 0 {
				path = fmt.Sprintf("/p/q/f%d", i)
			}
			src.Write(path, data)
			files[path] = data
		}
		blob, err := src.Snapshot("/p")
		if err != nil {
			return false
		}
		dst := New()
		if err := dst.RestoreSnapshot(blob, "/p"); err != nil {
			return false
		}
		for p, want := range files {
			got, err := dst.Read(p)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// seededRNG is a tiny xorshift for the property test (avoiding an sim
// import cycle is unnecessary, but a local generator keeps it simple).
func seededRNG(seed uint64) func() uint64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	state := seed
	return func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545F4914F6CDD1D
	}
}

// trickleReader yields at most max bytes per Read, forcing WriteFrom
// through many growth iterations.
type trickleReader struct {
	data []byte
	max  int
}

func (r *trickleReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := min(len(p), r.max, len(r.data))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// failReader errors after yielding some bytes.
type failReader struct{ n int }

func (r *failReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, errors.New("connection reset")
	}
	n := min(len(p), r.n)
	r.n -= n
	return n, nil
}

func TestWriteFrom(t *testing.T) {
	fs := New()
	// Larger than one 256 KB chunk so the growth loop runs, delivered in
	// small reads so chunk boundaries and partial reads both occur.
	want := bytes.Repeat([]byte("0123456789abcdef"), 40<<10) // 640 KB
	info, err := fs.WriteFrom("/big.bin", &trickleReader{data: want, max: 1013}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Size != len(want) {
		t.Errorf("info = %+v, want version 1 size %d", info, len(want))
	}
	got, err := fs.Read("/big.bin")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Read = %d bytes, %v; want %d bytes intact", len(got), err, len(want))
	}
	// Streamed writes participate in versioning like Write.
	if _, err := fs.WriteFrom("/big.bin", bytes.NewReader([]byte("v2")), 0); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat("/big.bin")
	if st.Version != 2 {
		t.Errorf("version = %d, want 2", st.Version)
	}
	hist, err := fs.History("/big.bin")
	if err != nil || len(hist) != 1 || len(hist[0].Data) != len(want) {
		t.Errorf("history = %d entries, %v; want prior revision archived", len(hist), err)
	}
}

func TestWriteFromTooLarge(t *testing.T) {
	fs := New()
	if _, err := fs.WriteFrom("/cap.bin", bytes.NewReader(make([]byte, 11)), 10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if fs.Exists("/cap.bin") {
		t.Error("oversized stream left a partial file")
	}
	// An oversize rewrite must not clobber existing content.
	if _, err := fs.Write("/cap.bin", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteFrom("/cap.bin", &trickleReader{data: make([]byte, 100), max: 7}, 10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if data, _ := fs.Read("/cap.bin"); string(data) != "keep" {
		t.Errorf("content = %q, want %q", data, "keep")
	}
	// Exactly at the cap is allowed.
	if _, err := fs.WriteFrom("/cap.bin", bytes.NewReader(make([]byte, 10)), 10); err != nil {
		t.Errorf("write at exact cap failed: %v", err)
	}
}

func TestWriteFromErrors(t *testing.T) {
	fs := New()
	if _, err := fs.WriteFrom("/f", &failReader{n: 5}, 0); err == nil {
		t.Error("reader failure not propagated")
	}
	if fs.Exists("/f") {
		t.Error("failed stream left a partial file")
	}
	if _, err := fs.WriteFrom("", bytes.NewReader(nil), 0); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := fs.WriteFrom("/no/such/parent", bytes.NewReader(nil), 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing parent err = %v, want ErrNotFound", err)
	}
}
