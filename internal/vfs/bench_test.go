package vfs

import (
	"fmt"
	"testing"
)

func BenchmarkWrite4KB(b *testing.B) {
	fs := New()
	data := make([]byte, 4<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Write("/f", data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4 << 10)
}

func BenchmarkRead4KB(b *testing.B) {
	fs := New()
	fs.Write("/f", make([]byte, 4<<10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Read("/f"); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4 << 10)
}

func BenchmarkStatDeepPath(b *testing.B) {
	fs := New()
	fs.MkdirAll("/a/b/c/d/e")
	fs.Write("/a/b/c/d/e/f", []byte("x"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat("/a/b/c/d/e/f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot100Files(b *testing.B) {
	fs := New()
	fs.MkdirAll("/t")
	for i := 0; i < 100; i++ {
		fs.Write(fmt.Sprintf("/t/f%03d", i), make([]byte, 8<<10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Snapshot("/t"); err != nil {
			b.Fatal(err)
		}
	}
}
