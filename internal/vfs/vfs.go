// Package vfs provides a thread-safe, versioned, in-memory hierarchical
// filesystem. It is the storage engine under the WebDAV server
// (internal/webdav) and the data attic (internal/attic).
//
// Every file carries an ETag that changes on each write, a monotonically
// increasing version number, dead properties (WebDAV PROPPATCH storage), and
// a bounded revision history used by the attic's offline-reconciliation
// machinery.
package vfs

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by filesystem operations.
var (
	ErrNotFound      = errors.New("vfs: not found")
	ErrExists        = errors.New("vfs: already exists")
	ErrNotDir        = errors.New("vfs: not a directory")
	ErrIsDir         = errors.New("vfs: is a directory")
	ErrDirNotEmpty   = errors.New("vfs: directory not empty")
	ErrBadPath       = errors.New("vfs: invalid path")
	ErrRootImmutable = errors.New("vfs: cannot modify root")
	ErrNoSuchVersion = errors.New("vfs: no such version")
	ErrTooLarge      = errors.New("vfs: content exceeds size limit")
)

// Revision is one historical version of a file.
type Revision struct {
	Version int
	ETag    string
	ModTime time.Time
	Data    []byte
}

// Info describes a file or directory, as returned by Stat and List.
type Info struct {
	Path    string
	Name    string
	IsDir   bool
	Size    int
	ETag    string
	Version int
	ModTime time.Time
}

type node struct {
	name     string
	isDir    bool
	children map[string]*node // dirs only
	data     []byte           // files only
	etag     string
	version  int
	modTime  time.Time
	props    map[string]string // dead properties (namespace:name -> value)
	history  []Revision
}

// FS is the filesystem. The zero value is not usable; call New.
type FS struct {
	mu         sync.RWMutex
	root       *node
	now        func() time.Time
	maxHistory int
}

// Option configures an FS.
type Option func(*FS)

// WithClock injects a time source (for deterministic tests/simulations).
func WithClock(now func() time.Time) Option {
	return func(f *FS) { f.now = now }
}

// WithMaxHistory bounds per-file revision history (default 8; 0 disables).
func WithMaxHistory(n int) Option {
	return func(f *FS) { f.maxHistory = n }
}

// New returns an empty filesystem with a root directory.
func New(opts ...Option) *FS {
	f := &FS{
		root: &node{
			name:     "/",
			isDir:    true,
			children: make(map[string]*node),
		},
		now:        time.Now,
		maxHistory: 8,
	}
	for _, o := range opts {
		o(f)
	}
	f.root.modTime = f.now()
	return f
}

// Clean canonicalizes a path: leading slash, no trailing slash (except root),
// no dot segments. Returns ErrBadPath for empty or escaping paths.
func Clean(p string) (string, error) {
	if p == "" {
		return "", ErrBadPath
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	c := path.Clean(p)
	if strings.Contains(c, "..") {
		return "", ErrBadPath
	}
	return c, nil
}

// split returns parent path and base name.
func split(p string) (dir, base string) {
	return path.Dir(p), path.Base(p)
}

func etagFor(data []byte, version int) string {
	h := sha256.Sum256(data)
	return fmt.Sprintf("\"%d-%s\"", version, hex.EncodeToString(h[:8]))
}

// lookup walks to the node at path p. Caller holds the lock.
func (f *FS) lookup(p string) (*node, error) {
	if p == "/" {
		return f.root, nil
	}
	cur := f.root
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if !cur.isDir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, ErrNotFound
		}
		cur = next
	}
	return cur, nil
}

func (f *FS) lookupParent(p string) (*node, string, error) {
	dir, base := split(p)
	parent, err := f.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir {
		return nil, "", ErrNotDir
	}
	return parent, base, nil
}

func (n *node) info(p string) Info {
	return Info{
		Path:    p,
		Name:    n.name,
		IsDir:   n.isDir,
		Size:    len(n.data),
		ETag:    n.etag,
		Version: n.version,
		ModTime: n.modTime,
	}
}

// Stat returns metadata for the file or directory at p.
func (f *FS) Stat(p string) (Info, error) {
	p, err := Clean(p)
	if err != nil {
		return Info{}, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return Info{}, err
	}
	return n.info(p), nil
}

// Exists reports whether p names an existing file or directory.
func (f *FS) Exists(p string) bool {
	_, err := f.Stat(p)
	return err == nil
}

// Mkdir creates a directory. Parent must exist.
func (f *FS) Mkdir(p string) error {
	p, err := Clean(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return ErrExists
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, base, err := f.lookupParent(p)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return ErrExists
	}
	parent.children[base] = &node{
		name:     base,
		isDir:    true,
		children: make(map[string]*node),
		modTime:  f.now(),
	}
	return nil
}

// MkdirAll creates a directory and any missing ancestors.
func (f *FS) MkdirAll(p string) error {
	p, err := Clean(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.root
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		next, ok := cur.children[part]
		if !ok {
			next = &node{
				name:     part,
				isDir:    true,
				children: make(map[string]*node),
				modTime:  f.now(),
			}
			cur.children[part] = next
		} else if !next.isDir {
			return ErrNotDir
		}
		cur = next
	}
	return nil
}

// Write creates or replaces the file at p with data, bumping its version and
// recording the previous content in the revision history. It returns the new
// file info. Parent directory must exist. data is copied; the caller keeps
// ownership of its slice.
func (f *FS) Write(p string, data []byte) (Info, error) {
	buf := make([]byte, len(data))
	copy(buf, data)
	return f.commitFile(p, buf)
}

// WriteFrom streams r into the file at p — the PUT path for large uploads,
// reading in bounded chunks instead of buffering via io.ReadAll's doubling
// growth. maxBytes > 0 caps the accepted size: the read aborts with
// ErrTooLarge as soon as the limit is crossed, without buffering the rest.
// The stream is fully read before any filesystem state changes, so a
// failed/oversized upload never leaves a partial file.
func (f *FS) WriteFrom(p string, r io.Reader, maxBytes int64) (Info, error) {
	// Validate the path before consuming the stream.
	if _, err := Clean(p); err != nil {
		return Info{}, err
	}
	const chunk = 256 << 10
	var buf []byte
	for {
		if len(buf)+chunk > cap(buf) {
			grown := make([]byte, len(buf), cap(buf)+chunk)
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf) : len(buf)+chunk : cap(buf)])
		buf = buf[:len(buf)+n]
		if maxBytes > 0 && int64(len(buf)) > maxBytes {
			return Info{}, ErrTooLarge
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return Info{}, err
		}
	}
	return f.commitFile(p, buf)
}

// commitFile installs buf (ownership transfers to the node) at p under the
// write lock, archiving the previous revision.
func (f *FS) commitFile(p string, buf []byte) (Info, error) {
	p, err := Clean(p)
	if err != nil {
		return Info{}, err
	}
	if p == "/" {
		return Info{}, ErrRootImmutable
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, base, err := f.lookupParent(p)
	if err != nil {
		return Info{}, err
	}
	n, ok := parent.children[base]
	if ok {
		if n.isDir {
			return Info{}, ErrIsDir
		}
		// Archive current content before overwriting.
		if f.maxHistory > 0 {
			n.history = append(n.history, Revision{
				Version: n.version,
				ETag:    n.etag,
				ModTime: n.modTime,
				Data:    n.data,
			})
			if len(n.history) > f.maxHistory {
				n.history = n.history[len(n.history)-f.maxHistory:]
			}
		}
	} else {
		n = &node{name: base, props: make(map[string]string)}
		parent.children[base] = n
	}
	n.data = buf
	n.version++
	n.etag = etagFor(buf, n.version)
	n.modTime = f.now()
	return n.info(p), nil
}

// WriteIfMatch replaces the file only if its current ETag equals etag
// (optimistic concurrency for attic reconciliation). An empty etag requires
// that the file not exist yet.
func (f *FS) WriteIfMatch(p string, data []byte, etag string) (Info, error) {
	p, err := Clean(p)
	if err != nil {
		return Info{}, err
	}
	f.mu.Lock()
	cur, lookErr := f.lookup(p)
	if etag == "" {
		if lookErr == nil {
			f.mu.Unlock()
			return Info{}, ErrExists
		}
	} else {
		if lookErr != nil {
			f.mu.Unlock()
			return Info{}, lookErr
		}
		if cur.etag != etag {
			f.mu.Unlock()
			return Info{}, &ConflictError{Path: p, Expected: etag, Actual: cur.etag}
		}
	}
	f.mu.Unlock()
	// A writer could race between the check and the write from outside the
	// package boundary; within the process the attic serializes callers, and
	// WebDAV uses LOCK for multi-client mediation, so check-then-write is
	// acceptable here.
	return f.Write(p, data)
}

// ConflictError reports an ETag mismatch in WriteIfMatch.
type ConflictError struct {
	Path     string
	Expected string
	Actual   string
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("vfs: etag conflict at %s: expected %s, have %s", e.Path, e.Expected, e.Actual)
}

// Read returns a copy of the file contents.
func (f *FS) Read(p string) ([]byte, error) {
	p, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.isDir {
		return nil, ErrIsDir
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// ReadVersion returns the content of a historical version (or the current
// one if version matches).
func (f *FS) ReadVersion(p string, version int) ([]byte, error) {
	p, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.isDir {
		return nil, ErrIsDir
	}
	if n.version == version {
		out := make([]byte, len(n.data))
		copy(out, n.data)
		return out, nil
	}
	for _, r := range n.history {
		if r.Version == version {
			out := make([]byte, len(r.Data))
			copy(out, r.Data)
			return out, nil
		}
	}
	return nil, ErrNoSuchVersion
}

// History returns the archived revisions of p, oldest first (without the
// current version).
func (f *FS) History(p string) ([]Revision, error) {
	p, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, err
	}
	out := make([]Revision, len(n.history))
	copy(out, n.history)
	return out, nil
}

// Delete removes a file or empty directory; with recursive, removes a whole
// subtree.
func (f *FS) Delete(p string, recursive bool) error {
	p, err := Clean(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return ErrRootImmutable
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, base, err := f.lookupParent(p)
	if err != nil {
		return err
	}
	n, ok := parent.children[base]
	if !ok {
		return ErrNotFound
	}
	if n.isDir && len(n.children) > 0 && !recursive {
		return ErrDirNotEmpty
	}
	delete(parent.children, base)
	return nil
}

// List returns the immediate children of a directory, sorted by name.
func (f *FS) List(p string) ([]Info, error) {
	p, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, err
	}
	if !n.isDir {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Info, 0, len(names))
	for _, name := range names {
		childPath := p + "/" + name
		if p == "/" {
			childPath = "/" + name
		}
		out = append(out, n.children[name].info(childPath))
	}
	return out, nil
}

// Walk visits every file and directory under root (inclusive), depth-first,
// in sorted order. The callback receives each entry's Info.
func (f *FS) Walk(root string, fn func(Info) error) error {
	root, err := Clean(root)
	if err != nil {
		return err
	}
	info, err := f.Stat(root)
	if err != nil {
		return err
	}
	if err := fn(info); err != nil {
		return err
	}
	if !info.IsDir {
		return nil
	}
	children, err := f.List(root)
	if err != nil {
		return err
	}
	for _, c := range children {
		if err := f.Walk(c.Path, fn); err != nil {
			return err
		}
	}
	return nil
}

// Copy duplicates src to dst (overwrite replaces an existing destination).
// Directories are copied recursively. Copies get fresh version counters.
func (f *FS) Copy(src, dst string, overwrite bool) error {
	src, err := Clean(src)
	if err != nil {
		return err
	}
	dst, err = Clean(dst)
	if err != nil {
		return err
	}
	if src == dst {
		// Degenerate copy: succeeds iff the source exists.
		f.mu.RLock()
		_, err := f.lookup(src)
		f.mu.RUnlock()
		return err
	}
	if strings.HasPrefix(dst+"/", src+"/") && src != "/" {
		return ErrBadPath // copying a dir into itself
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	sn, err := f.lookup(src)
	if err != nil {
		return err
	}
	parent, base, err := f.lookupParent(dst)
	if err != nil {
		return err
	}
	if _, exists := parent.children[base]; exists && !overwrite {
		return ErrExists
	}
	parent.children[base] = f.cloneNode(sn, base)
	return nil
}

func (f *FS) cloneNode(n *node, name string) *node {
	c := &node{
		name:    name,
		isDir:   n.isDir,
		version: 1,
		modTime: f.now(),
	}
	if n.isDir {
		c.children = make(map[string]*node, len(n.children))
		for k, v := range n.children {
			c.children[k] = f.cloneNode(v, k)
		}
	} else {
		c.data = make([]byte, len(n.data))
		copy(c.data, n.data)
		c.etag = etagFor(c.data, c.version)
		c.props = make(map[string]string, len(n.props))
		for k, v := range n.props {
			c.props[k] = v
		}
	}
	return c
}

// Move renames src to dst (overwrite replaces an existing destination).
func (f *FS) Move(src, dst string, overwrite bool) error {
	src, err := Clean(src)
	if err != nil {
		return err
	}
	dst, err = Clean(dst)
	if err != nil {
		return err
	}
	if src == "/" || dst == "/" {
		return ErrRootImmutable
	}
	if src == dst {
		// Degenerate move: succeeds iff the source exists.
		f.mu.RLock()
		_, err := f.lookup(src)
		f.mu.RUnlock()
		return err
	}
	if strings.HasPrefix(dst+"/", src+"/") {
		return ErrBadPath
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	sParent, sBase, err := f.lookupParent(src)
	if err != nil {
		return err
	}
	n, ok := sParent.children[sBase]
	if !ok {
		return ErrNotFound
	}
	dParent, dBase, err := f.lookupParent(dst)
	if err != nil {
		return err
	}
	if _, exists := dParent.children[dBase]; exists && !overwrite {
		return ErrExists
	}
	delete(sParent.children, sBase)
	n.name = dBase
	n.modTime = f.now()
	dParent.children[dBase] = n
	return nil
}

// SetProp sets a dead property on a file or directory.
func (f *FS) SetProp(p, key, value string) error {
	p, err := Clean(p)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if err != nil {
		return err
	}
	if n.props == nil {
		n.props = make(map[string]string)
	}
	n.props[key] = value
	return nil
}

// Prop returns a dead property's value and whether it is set.
func (f *FS) Prop(p, key string) (string, bool, error) {
	p, err := Clean(p)
	if err != nil {
		return "", false, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return "", false, err
	}
	v, ok := n.props[key]
	return v, ok, nil
}

// RemoveProp deletes a dead property.
func (f *FS) RemoveProp(p, key string) error {
	p, err := Clean(p)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if err != nil {
		return err
	}
	delete(n.props, key)
	return nil
}

// Props returns a copy of all dead properties on p.
func (f *FS) Props(p string) (map[string]string, error) {
	p, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(n.props))
	for k, v := range n.props {
		out[k] = v
	}
	return out, nil
}

// TotalBytes returns the sum of all file sizes (for attic quota accounting).
func (f *FS) TotalBytes() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total int
	var walk func(*node)
	walk = func(n *node) {
		if n.isDir {
			for _, c := range n.children {
				walk(c)
			}
		} else {
			total += len(n.data)
		}
	}
	walk(f.root)
	return total
}
