package vfs

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Snapshot serialization: the whole-attic backup path of §IV-A ("replicating
// the entire HPoP to attics belonging to friends and relatives") needs the
// filesystem tree as one blob the backup engine can encrypt, shard, and
// place at peers. The format is a gob-encoded flat entry list.

// snapshotEntry is one serialized file or directory.
type snapshotEntry struct {
	Path  string
	IsDir bool
	Data  []byte
	Props map[string]string
}

// snapshotBlob is the serialized form.
type snapshotBlob struct {
	Version int
	Root    string
	Entries []snapshotEntry
}

// Snapshot serializes the subtree rooted at root (inclusive) into a blob.
// Revision history is not captured — a snapshot is a point-in-time copy.
func (f *FS) Snapshot(root string) ([]byte, error) {
	root, err := Clean(root)
	if err != nil {
		return nil, err
	}
	blob := snapshotBlob{Version: 1, Root: root}
	err = f.Walk(root, func(info Info) error {
		e := snapshotEntry{Path: info.Path, IsDir: info.IsDir}
		if !info.IsDir {
			data, err := f.Read(info.Path)
			if err != nil {
				return err
			}
			e.Data = data
		}
		props, err := f.Props(info.Path)
		if err != nil {
			return err
		}
		if len(props) > 0 {
			e.Props = props
		}
		blob.Entries = append(blob.Entries, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return nil, fmt.Errorf("vfs: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreSnapshot materializes a snapshot blob under the given target root
// (which may differ from the snapshot's original root — restoring a friend's
// attic into a sandbox directory, say). Existing files are overwritten.
func (f *FS) RestoreSnapshot(blob []byte, targetRoot string) error {
	targetRoot, err := Clean(targetRoot)
	if err != nil {
		return err
	}
	var snap snapshotBlob
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&snap); err != nil {
		return fmt.Errorf("vfs: decode snapshot: %w", err)
	}
	if snap.Version != 1 {
		return fmt.Errorf("vfs: unsupported snapshot version %d", snap.Version)
	}
	rebase := func(p string) (string, error) {
		if p == snap.Root {
			return targetRoot, nil
		}
		rel := p[len(snap.Root):]
		if snap.Root == "/" {
			rel = p
		}
		return Clean(targetRoot + rel)
	}
	for _, e := range snap.Entries {
		dst, err := rebase(e.Path)
		if err != nil {
			return err
		}
		if e.IsDir {
			if err := f.MkdirAll(dst); err != nil {
				return err
			}
		} else {
			// Ensure the parent exists even for snapshots whose directory
			// entries were pruned.
			dir, _ := split(dst)
			if err := f.MkdirAll(dir); err != nil {
				return err
			}
			if _, err := f.Write(dst, e.Data); err != nil {
				return err
			}
		}
		for k, v := range e.Props {
			if err := f.SetProp(dst, k, v); err != nil {
				return err
			}
		}
	}
	return nil
}
