package webmodel

import (
	"math"
	"sort"

	"hpop/internal/sim"
)

// The paper's §II cites the CCZ measurement study [4]: "CCZ users only
// exceed a download rate of 10Mbps 0.1% of the time and a 0.5Mbps upload
// rate 1% of the time." TrafficConfig's defaults are calibrated so the
// generated per-second rate process reproduces those two statistics; the E2
// experiment prints claimed vs measured.

// Paper-claimed utilization statistics (thresholds in bits/sec, fractions of
// seconds).
const (
	CCZDownThresholdBps = 10e6
	CCZDownFraction     = 0.001
	CCZUpThresholdBps   = 0.5e6
	CCZUpFraction       = 0.01
)

// TrafficConfig parameterizes one home's daily traffic mixture.
type TrafficConfig struct {
	// PageViewsPerDay is the number of web page loads (bursty downloads).
	PageViewsPerDay float64
	// PageMedianBytes / PageSigma shape page transfer sizes (lognormal).
	PageMedianBytes float64
	PageSigma       float64
	// PageRateMedianBps / PageRateSigma shape the achieved burst rate
	// (server/TCP limited, not access-link limited — the paper's point).
	PageRateMedianBps float64
	PageRateSigma     float64
	// BulkDownloadsPerDay are large transfers (video, updates).
	BulkDownloadsPerDay float64
	BulkMedianBytes     float64
	BulkRateBps         float64
	// UploadSecondsPerDay is time spent in sustained uploads (video calls,
	// backups) and UploadRateBps their rate.
	UploadSecondsPerDay float64
	UploadRateBps       float64
	// SmallUploadsPerDay are request/ack upstream blips below threshold.
	SmallUploadsPerDay float64
	SmallUploadBytes   float64
}

// DefaultTrafficConfig returns the CCZ-calibrated mixture.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{
		PageViewsPerDay:     150,
		PageMedianBytes:     1.5e6,
		PageSigma:           1.0,
		PageRateMedianBps:   4e6,
		PageRateSigma:       1.0,
		BulkDownloadsPerDay: 2,
		BulkMedianBytes:     80e6,
		BulkRateBps:         30e6,
		UploadSecondsPerDay: 800,
		UploadRateBps:       1.5e6,
		SmallUploadsPerDay:  300,
		SmallUploadBytes:    40e3,
	}
}

// DaySeconds is the number of per-second samples in a generated day.
const DaySeconds = 86400

// DayTrace holds one home's per-second rates for a day.
type DayTrace struct {
	DownBps []float64
	UpBps   []float64
}

// FractionAbove returns the fraction of seconds with rate strictly above
// threshold in the given series.
func FractionAbove(series []float64, threshold float64) float64 {
	if len(series) == 0 {
		return 0
	}
	n := 0
	for _, v := range series {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(series))
}

// Percentile returns the p-th percentile (0..100) of the series.
func Percentile(series []float64, p float64) float64 {
	if len(series) == 0 {
		return 0
	}
	s := make([]float64, len(series))
	copy(s, series)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

type burst struct {
	start    float64 // seconds
	duration float64
	rateBps  float64
	up       bool
}

// GenerateDay produces one home's per-second traffic for a day.
func GenerateDay(rng *sim.RNG, cfg TrafficConfig) DayTrace {
	var bursts []burst
	logn := func(median, sigma float64) float64 {
		return rng.LogNormal(lognMu(median), sigma)
	}
	// Page views.
	n := poisson(rng, cfg.PageViewsPerDay)
	for i := 0; i < n; i++ {
		size := logn(cfg.PageMedianBytes, cfg.PageSigma)
		rate := logn(cfg.PageRateMedianBps, cfg.PageRateSigma)
		bursts = append(bursts, burst{
			start:    rng.Float64() * DaySeconds,
			duration: size * 8 / rate,
			rateBps:  rate,
		})
	}
	// Bulk downloads.
	n = poisson(rng, cfg.BulkDownloadsPerDay)
	for i := 0; i < n; i++ {
		size := logn(cfg.BulkMedianBytes, 0.7)
		bursts = append(bursts, burst{
			start:    rng.Float64() * DaySeconds,
			duration: size * 8 / cfg.BulkRateBps,
			rateBps:  cfg.BulkRateBps,
		})
	}
	// Sustained uploads (a couple of sessions adding up to the configured
	// daily duration).
	if cfg.UploadSecondsPerDay > 0 {
		sessions := 1 + rng.Intn(3)
		per := cfg.UploadSecondsPerDay / float64(sessions)
		for i := 0; i < sessions; i++ {
			bursts = append(bursts, burst{
				start:    rng.Float64() * DaySeconds,
				duration: per * (0.5 + rng.Float64()),
				rateBps:  cfg.UploadRateBps,
				up:       true,
			})
		}
	}
	// Small uploads.
	n = poisson(rng, cfg.SmallUploadsPerDay)
	for i := 0; i < n; i++ {
		bursts = append(bursts, burst{
			start:    rng.Float64() * DaySeconds,
			duration: 1,
			rateBps:  cfg.SmallUploadBytes * 8,
			up:       true,
		})
	}

	trace := DayTrace{
		DownBps: make([]float64, DaySeconds),
		UpBps:   make([]float64, DaySeconds),
	}
	for _, b := range bursts {
		series := trace.DownBps
		if b.up {
			series = trace.UpBps
		}
		end := b.start + b.duration
		for s := int(b.start); float64(s) < end && s < DaySeconds; s++ {
			if s < 0 {
				continue
			}
			// Fractional coverage at the edges.
			cover := 1.0
			if float64(s) < b.start {
				cover -= b.start - float64(s)
			}
			if float64(s+1) > end {
				cover -= float64(s+1) - end
			}
			if cover < 0 {
				cover = 0
			}
			series[s] += b.rateBps * cover
		}
	}
	return trace
}

// lognMu converts a median to the lognormal mu parameter.
func lognMu(median float64) float64 {
	if median <= 0 {
		return 0
	}
	return math.Log(median)
}

// poisson draws a Poisson variate via inversion for small means and a
// normal approximation above 30 (adequate for workload counts).
func poisson(rng *sim.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := rng.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
