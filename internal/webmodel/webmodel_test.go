package webmodel

import (
	"testing"
	"testing/quick"

	"hpop/internal/sim"
)

func testCorpus(seed uint64, n int) *Corpus {
	return NewCorpus(sim.NewRNG(seed), CorpusConfig{Objects: n})
}

func TestCorpusGeneration(t *testing.T) {
	c := testCorpus(1, 5000)
	if c.Len() != 5000 {
		t.Fatalf("len = %d", c.Len())
	}
	var immutable, deep int
	for i := range c.Objects {
		o := c.Get(i)
		if o.Size < 200 {
			t.Fatalf("object %d size %d below floor", i, o.Size)
		}
		if o.ChangePeriod == 0 {
			immutable++
		}
		if o.Deep {
			deep++
		}
	}
	immFrac := float64(immutable) / 5000
	if immFrac < 0.2 || immFrac > 0.4 {
		t.Errorf("immutable fraction = %.2f, want ~0.3", immFrac)
	}
	deepFrac := float64(deep) / 5000
	if deepFrac < 0.1 || deepFrac > 0.3 {
		t.Errorf("deep fraction = %.2f, want ~0.2", deepFrac)
	}
}

func TestCorpusPopularitySkew(t *testing.T) {
	c := testCorpus(2, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 50000; i++ {
		counts[c.Draw()]++
	}
	if counts[0] <= counts[900] {
		t.Error("rank 0 not more popular than rank 900")
	}
}

func TestObjectVersioning(t *testing.T) {
	o := Object{ChangePeriod: 100, Phase: 0}
	if o.VersionAt(50) != 0 || o.VersionAt(150) != 1 || o.VersionAt(250) != 2 {
		t.Error("versions wrong")
	}
	if !o.FreshAt(10, 90) {
		t.Error("copy within period reported stale")
	}
	if o.FreshAt(10, 150) {
		t.Error("copy across change reported fresh")
	}
	imm := Object{}
	if imm.VersionAt(1e9) != 0 || !imm.FreshAt(0, 1e9) {
		t.Error("immutable object versioning wrong")
	}
}

func TestProfileCatalogDistinct(t *testing.T) {
	c := testCorpus(3, 2000)
	p := NewProfile(sim.NewRNG(4), c, 300, 1.0, 400)
	if len(p.Catalog) != 300 {
		t.Fatalf("catalog = %d", len(p.Catalog))
	}
	seen := make(map[int]bool)
	for _, id := range p.Catalog {
		if seen[id] {
			t.Fatal("duplicate in catalog")
		}
		if id < 0 || id >= 2000 {
			t.Fatalf("catalog id %d out of range", id)
		}
		seen[id] = true
	}
}

func TestProfileDrawsWithinCatalog(t *testing.T) {
	c := testCorpus(5, 1000)
	p := NewProfile(sim.NewRNG(6), c, 100, 1.0, 400)
	members := make(map[int]bool, len(p.Catalog))
	for _, id := range p.Catalog {
		members[id] = true
	}
	for i := 0; i < 5000; i++ {
		if !members[p.Draw()] {
			t.Fatal("draw outside catalog")
		}
	}
}

func TestProfileTemporalLocality(t *testing.T) {
	// The user's top personal object should dominate their trace — the
	// history signal prefetching depends on.
	c := testCorpus(7, 1000)
	p := NewProfile(sim.NewRNG(8), c, 200, 1.2, 400)
	trace := p.Trace(sim.NewRNG(9), 10)
	freq := Frequencies(trace)
	top := freq[p.Catalog[0]]
	mid := freq[p.Catalog[100]]
	if top <= mid {
		t.Errorf("personal rank-0 count %d not above rank-100 count %d", top, mid)
	}
}

func TestTraceTiming(t *testing.T) {
	c := testCorpus(10, 500)
	p := NewProfile(sim.NewRNG(11), c, 100, 1.0, 200)
	trace := p.Trace(sim.NewRNG(12), 5)
	want := 5.0 * 200
	if float64(len(trace)) < want*0.8 || float64(len(trace)) > want*1.2 {
		t.Errorf("trace length = %d, want ~%.0f", len(trace), want)
	}
	last := sim.Time(-1)
	for _, r := range trace {
		if r.Time < last {
			t.Fatal("trace not time-ordered")
		}
		if r.Time >= 5*86400 {
			t.Fatal("request past horizon")
		}
		last = r.Time
	}
}

func TestGenerateDayCCZCalibration(t *testing.T) {
	// Aggregate several simulated homes and check the two headline CCZ
	// statistics land in the right decade (shape, not exact match).
	rng := sim.NewRNG(42)
	cfg := DefaultTrafficConfig()
	var downAbove, upAbove, total float64
	for h := 0; h < 20; h++ {
		d := GenerateDay(rng, cfg)
		downAbove += FractionAbove(d.DownBps, CCZDownThresholdBps) * DaySeconds
		upAbove += FractionAbove(d.UpBps, CCZUpThresholdBps) * DaySeconds
		total += DaySeconds
	}
	downFrac := downAbove / total
	upFrac := upAbove / total
	if downFrac < 0.0002 || downFrac > 0.005 {
		t.Errorf("P(down > 10 Mbps) = %.4f%%, want ~0.1%% (paper)", downFrac*100)
	}
	if upFrac < 0.003 || upFrac > 0.03 {
		t.Errorf("P(up > 0.5 Mbps) = %.4f%%, want ~1%% (paper)", upFrac*100)
	}
}

func TestGenerateDayMostlyIdle(t *testing.T) {
	d := GenerateDay(sim.NewRNG(1), DefaultTrafficConfig())
	idle := 0
	for _, v := range d.DownBps {
		if v == 0 {
			idle++
		}
	}
	if float64(idle)/DaySeconds < 0.5 {
		t.Errorf("idle fraction = %.2f; homes should be mostly idle", float64(idle)/DaySeconds)
	}
}

func TestFractionAboveAndPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := FractionAbove(s, 8); got != 0.2 {
		t.Errorf("FractionAbove = %v, want 0.2", got)
	}
	if got := FractionAbove(nil, 1); got != 0 {
		t.Errorf("empty FractionAbove = %v", got)
	}
	if got := Percentile(s, 50); got != 5 && got != 6 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(s, 100); got != 10 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := sim.NewRNG(13)
	for _, mean := range []float64{0, 2, 10, 100} {
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / n
		if mean == 0 && got != 0 {
			t.Errorf("poisson(0) mean = %v", got)
		}
		if mean > 0 && (got < mean*0.9 || got > mean*1.1) {
			t.Errorf("poisson(%v) mean = %v", mean, got)
		}
	}
}

// Property: FreshAt is reflexive (a copy is always fresh at its own fetch
// time) and consistent with VersionAt.
func TestFreshnessProperty(t *testing.T) {
	f := func(periodRaw uint16, fetchRaw, atRaw uint32) bool {
		o := Object{ChangePeriod: sim.Time(periodRaw) + 1, Phase: 3}
		fetch := sim.Time(fetchRaw)
		at := sim.Time(atRaw)
		if !o.FreshAt(fetch, fetch) {
			return false
		}
		return o.FreshAt(fetch, at) == (o.VersionAt(fetch) == o.VersionAt(at))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
