// Package webmodel provides synthetic web workloads: a Zipf-popularity
// object corpus with per-object change processes, per-user browsing profiles
// with temporal locality, and a per-second residential traffic generator
// calibrated to the Case Connection Zone measurements the paper cites
// (download rate exceeds 10 Mbps in ~0.1% of seconds; upload exceeds
// 0.5 Mbps in ~1%).
//
// This package substitutes for the real user traces the paper's substrate
// experiments would need; DESIGN.md records the substitution.
package webmodel

import (
	"math"

	"hpop/internal/sim"
)

// Object is one web resource in the synthetic corpus.
type Object struct {
	// ID is the object's index in the corpus (also its popularity rank
	// under the global Zipf draw: lower = more popular).
	ID int
	// Size in bytes.
	Size int
	// ChangePeriod is the mean interval between content updates; zero means
	// the object is immutable.
	ChangePeriod sim.Time
	// Phase offsets the change schedule so objects don't update in lockstep.
	Phase sim.Time
	// Deep marks "deep web" content: requires user credentials to fetch
	// (§IV-D), so only a credentialed HPoP collector can prefetch it.
	Deep bool
}

// VersionAt returns the content version of the object at simulated time t.
// Version changes are deterministic given the object's period and phase.
func (o *Object) VersionAt(t sim.Time) int {
	if o.ChangePeriod <= 0 {
		return 0
	}
	return int((t + o.Phase) / o.ChangePeriod)
}

// FreshAt reports whether a copy fetched at fetchTime is still current at t.
func (o *Object) FreshAt(fetchTime, t sim.Time) bool {
	return o.VersionAt(fetchTime) == o.VersionAt(t)
}

// CorpusConfig parameterizes corpus generation.
type CorpusConfig struct {
	// Objects is the corpus size (default 100000).
	Objects int
	// ZipfExponent sets popularity skew (default 0.9, the classic web value).
	ZipfExponent float64
	// MedianSize is the median object size in bytes (default 24 KB).
	MedianSize float64
	// SizeSigma is the lognormal sigma of sizes (default 1.5).
	SizeSigma float64
	// MeanChangeHours is the mean change period (default 24 h); individual
	// objects draw exponentially around it, and a fraction are immutable.
	MeanChangeHours float64
	// ImmutableFrac is the fraction of never-changing objects (default 0.3).
	ImmutableFrac float64
	// DeepFrac is the fraction of credential-gated deep-web objects
	// (default 0.2).
	DeepFrac float64
}

func (c *CorpusConfig) applyDefaults() {
	if c.Objects <= 0 {
		c.Objects = 100000
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 0.9
	}
	if c.MedianSize <= 0 {
		c.MedianSize = 24 << 10
	}
	if c.SizeSigma <= 0 {
		c.SizeSigma = 1.5
	}
	if c.MeanChangeHours <= 0 {
		c.MeanChangeHours = 24
	}
	if c.ImmutableFrac <= 0 {
		c.ImmutableFrac = 0.3
	}
	if c.DeepFrac <= 0 {
		c.DeepFrac = 0.2
	}
}

// Corpus is a fixed set of synthetic web objects plus a global popularity
// distribution.
type Corpus struct {
	Objects []Object
	zipf    *sim.Zipf
}

// NewCorpus generates a corpus deterministically from the RNG.
func NewCorpus(rng *sim.RNG, cfg CorpusConfig) *Corpus {
	cfg.applyDefaults()
	objs := make([]Object, cfg.Objects)
	mu := math.Log(cfg.MedianSize)
	for i := range objs {
		size := int(rng.LogNormal(mu, cfg.SizeSigma))
		if size < 200 {
			size = 200
		}
		var period sim.Time
		if !rng.Bool(cfg.ImmutableFrac) {
			period = sim.Time(rng.Exp(1.0/(cfg.MeanChangeHours*3600)) + 60)
		}
		objs[i] = Object{
			ID:           i,
			Size:         size,
			ChangePeriod: period,
			Phase:        sim.Time(rng.Float64()) * period,
			Deep:         rng.Bool(cfg.DeepFrac),
		}
	}
	return &Corpus{
		Objects: objs,
		zipf:    sim.NewZipf(rng, cfg.Objects, cfg.ZipfExponent),
	}
}

// Draw samples an object ID by global popularity.
func (c *Corpus) Draw() int { return c.zipf.Draw() }

// Get returns the object with the given ID.
func (c *Corpus) Get(id int) *Object { return &c.Objects[id] }

// Len returns the corpus size.
func (c *Corpus) Len() int { return len(c.Objects) }

// Profile is one user's browsing behaviour: a personal catalog drawn from
// the global distribution, revisited with its own Zipf skew — this produces
// the long-horizon history that Internet@home mines, plus cross-user overlap
// on globally popular objects that the cooperative cache exploits.
type Profile struct {
	Catalog []int // object IDs, personal popularity order
	zipf    *sim.Zipf
	// RequestsPerDay is the mean number of object requests the user issues.
	RequestsPerDay float64
}

// NewProfile builds a user profile of catalogSize distinct objects drawn by
// global popularity (duplicates redrawn), revisited with exponent `skew`.
func NewProfile(rng *sim.RNG, c *Corpus, catalogSize int, skew, requestsPerDay float64) *Profile {
	if catalogSize <= 0 {
		catalogSize = 500
	}
	if skew <= 0 {
		skew = 1.0
	}
	if requestsPerDay <= 0 {
		requestsPerDay = 400
	}
	seen := make(map[int]bool, catalogSize)
	catalog := make([]int, 0, catalogSize)
	for len(catalog) < catalogSize {
		id := c.Draw()
		if seen[id] {
			// Redraw collisions, but cap attempts to stay O(n) even for
			// tiny corpora.
			id = rng.Intn(c.Len())
			if seen[id] {
				continue
			}
		}
		seen[id] = true
		catalog = append(catalog, id)
	}
	return &Profile{
		Catalog:        catalog,
		zipf:           sim.NewZipf(rng, len(catalog), skew),
		RequestsPerDay: requestsPerDay,
	}
}

// Draw samples an object ID from the user's personal distribution.
func (p *Profile) Draw() int { return p.Catalog[p.zipf.Draw()] }

// Request is one object access in a trace.
type Request struct {
	Time     sim.Time
	ObjectID int
}

// Trace generates a request trace covering `days` days, with requests spread
// by a Poisson process at the profile's daily rate.
func (p *Profile) Trace(rng *sim.RNG, days float64) []Request {
	var out []Request
	horizon := sim.Time(days * 86400)
	rate := p.RequestsPerDay / 86400
	t := sim.Time(rng.Exp(rate))
	for t < horizon {
		out = append(out, Request{Time: t, ObjectID: p.Draw()})
		t += sim.Time(rng.Exp(rate))
	}
	return out
}

// Frequencies counts accesses per object in a trace (the history signal the
// Internet@home prefetcher mines).
func Frequencies(trace []Request) map[int]int {
	out := make(map[int]int)
	for _, r := range trace {
		out[r.ObjectID]++
	}
	return out
}
