package attic

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"hpop/internal/hpop"
	"hpop/internal/webdav"
)

// startAttic boots a real HPoP with an attic and returns the attic and base
// URL.
func startAttic(t *testing.T) (*Attic, string) {
	t.Helper()
	a := New("owner", "hunter2")
	h := hpop.New(hpop.Config{Name: "test"})
	if err := h.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Stop(context.Background()) })
	a.SetBaseURL(h.URL())
	return a, h.URL()
}

func TestOwnerFullAccess(t *testing.T) {
	a, base := startAttic(t)
	c := a.OwnerClient(base)
	if err := c.Mkcol("/photos"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("/photos/cat.jpg", []byte("meow"), nil); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.Get("/photos/cat.jpg")
	if err != nil || string(data) != "meow" {
		t.Fatalf("Get = %q, %v", data, err)
	}
}

func TestAnonymousRejected(t *testing.T) {
	_, base := startAttic(t)
	anon := &webdav.Client{BaseURL: base + DAVPrefix}
	if _, err := anon.Put("/f", []byte("x"), nil); !webdav.IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("anon err = %v, want 401", err)
	}
}

func TestGrantScoping(t *testing.T) {
	a, base := startAttic(t)
	owner := a.OwnerClient(base)
	owner.Mkcol("/private")
	owner.Put("/private/secret", []byte("hidden"), nil)

	token, err := a.IssueGrant("Clinic A", "/health/clinic-a")
	if err != nil {
		t.Fatal(err)
	}
	client, g, err := ClientFromGrant(token)
	if err != nil {
		t.Fatal(err)
	}
	if g.Scope != "/health/clinic-a" || g.Provider != "Clinic A" {
		t.Errorf("grant = %+v", g)
	}
	// In scope: allowed.
	if _, err := client.Put("/health/clinic-a/visit1.json", []byte("{}"), nil); err != nil {
		t.Fatalf("in-scope PUT: %v", err)
	}
	// Outside scope: rejected.
	if _, _, err := client.Get("/private/secret"); !webdav.IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("out-of-scope GET err = %v, want 401", err)
	}
	if _, err := client.Put("/health/other", []byte("x"), nil); !webdav.IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("sibling-scope PUT err = %v, want 401", err)
	}
	// Prefix trickery must not escape the scope.
	if _, err := client.Put("/health/clinic-a-evil", []byte("x"), nil); !webdav.IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("prefix-collision PUT err = %v, want 401", err)
	}
}

func TestReadOnlyGrant(t *testing.T) {
	a, base := startAttic(t)
	token, err := a.IssueGrant("Viewer", "/shared", ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	ownerC := a.OwnerClient(base)
	ownerC.Put("/shared/doc", []byte("read me"), nil)
	client, _, _ := ClientFromGrant(token)
	if _, _, err := client.Get("/shared/doc"); err != nil {
		t.Fatalf("read-only GET: %v", err)
	}
	if _, err := client.Propfind("/shared", "1"); err != nil {
		t.Fatalf("read-only PROPFIND: %v", err)
	}
	if _, err := client.Put("/shared/doc", []byte("vandalized"), nil); !webdav.IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("read-only PUT err = %v, want 401", err)
	}
}

func TestRevokeGrant(t *testing.T) {
	a, base := startAttic(t)
	token, _ := a.IssueGrant("Clinic", "/health/c")
	client, g, _ := ClientFromGrant(token)
	if _, err := client.Put("/health/c/r1", []byte("{}"), nil); err != nil {
		t.Fatal(err)
	}
	if err := a.RevokeGrant(g.Username); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Put("/health/c/r2", []byte("{}"), nil); !webdav.IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("post-revoke PUT err = %v, want 401", err)
	}
	if err := a.RevokeGrant(g.Username); err != ErrGrantRevoked {
		t.Errorf("double revoke err = %v", err)
	}
	if err := a.RevokeGrant("ghost"); err != ErrNoSuchGrant {
		t.Errorf("ghost revoke err = %v", err)
	}
	if err := a.RevokeGrant("owner"); err != ErrNoSuchGrant {
		t.Errorf("owner revoke err = %v (owner must not be revocable)", err)
	}
	_ = base
}

func TestGrantsListing(t *testing.T) {
	a, _ := startAttic(t)
	a.IssueGrant("A", "/a")
	a.IssueGrant("B", "/b", ReadOnly())
	grants := a.Grants()
	if len(grants) != 2 {
		t.Fatalf("grants = %d", len(grants))
	}
	token, _ := a.IssueGrant("C", "/c")
	client, g, _ := ClientFromGrant(token)
	_ = client
	a.RevokeGrant(g.Username)
	if len(a.Grants()) != 2 {
		t.Error("revoked grant still listed")
	}
}

func TestGrantPortalHTTP(t *testing.T) {
	_, base := startAttic(t)
	// Unauthenticated POST rejected.
	resp, err := http.PostForm(base+"/attic/grants", url.Values{"provider": {"X"}, "scope": {"/x"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("anon portal POST = %d, want 401", resp.StatusCode)
	}
	// Owner-authenticated POST issues a working grant token.
	req, _ := http.NewRequest(http.MethodPost, base+"/attic/grants",
		strings.NewReader(url.Values{"provider": {"Lab"}, "scope": {"/health/lab"}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.SetBasicAuth("owner", "hunter2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tokenBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("portal POST = %d", resp.StatusCode)
	}
	client, _, err := ClientFromGrant(string(tokenBytes))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Put("/health/lab/result", []byte("{}"), nil); err != nil {
		t.Errorf("grant from portal unusable: %v", err)
	}
	// GET lists it.
	req, _ = http.NewRequest(http.MethodGet, base+"/attic/grants", nil)
	req.SetBasicAuth("owner", "hunter2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(listing), "Lab") {
		t.Errorf("portal listing = %q", listing)
	}
}

func TestMetricsInstrumented(t *testing.T) {
	a := New("owner", "pw")
	h := hpop.New(hpop.Config{})
	h.Register(a)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop(context.Background())
	a.SetBaseURL(h.URL())
	c := a.OwnerClient(h.URL())
	c.Put("/f", []byte("x"), nil)
	c.Get("/f")
	if got := h.Metrics().Counter("attic.requests"); got < 2 {
		t.Errorf("attic.requests = %v, want >= 2", got)
	}
	if got := h.Metrics().Counter("attic.requests.put"); got != 1 {
		t.Errorf("put counter = %v", got)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"Clinic A":   "clinic-a",
		"__X__":      "--x--",
		"!!!":        "provider",
		"lab-42 Inc": "lab-42-inc",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestQuotaEnforcement(t *testing.T) {
	a := New("owner", "pw", WithQuota(1000))
	h := hpop.New(hpop.Config{})
	h.Register(a)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop(context.Background())
	a.SetBaseURL(h.URL())
	c := a.OwnerClient(h.URL())

	if _, err := c.Put("/small", make([]byte, 400), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("/medium", make([]byte, 400), nil); err != nil {
		t.Fatal(err)
	}
	// 800 used; a 400-byte upload would exceed 1000.
	if _, err := c.Put("/over", make([]byte, 400), nil); !webdav.IsStatus(err, http.StatusInsufficientStorage) {
		t.Errorf("over-quota PUT err = %v, want 507", err)
	}
	if got := h.Metrics().Counter("attic.quota_rejections"); got != 1 {
		t.Errorf("quota_rejections = %v", got)
	}
	// Freeing space re-enables uploads.
	if err := c.Delete("/small", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("/over", make([]byte, 400), nil); err != nil {
		t.Errorf("post-delete PUT err = %v", err)
	}
}
