// Package attic implements the paper's Data Attic (§IV-A): an
// application-agnostic store in the user's home that external applications
// operate on but never retain. It layers on the WebDAV server
// (internal/webdav) exactly as the paper's prototype did, and adds:
//
//   - provider grants: the one-time QR-code bootstrap that hands a new
//     provider scoped credentials to one subtree of the attic,
//   - the health-records exemplar: a provider-side storage driver that
//     duplicates writes to the provider's local store and the patient's attic,
//   - the open/close wrapper driver: GET-on-open, local copy, PUT-on-close,
//     mirroring the paper's linker --wrap trick,
//   - offline mode with reconciliation on reconnect,
//   - backup/replication planning (local snapshot, full replicas at friends'
//     attics, or Reed-Solomon shards across peers).
package attic

import (
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"hpop/internal/auth"
	"hpop/internal/hpop"
	"hpop/internal/vfs"
	"hpop/internal/webdav"
)

// Errors returned by the attic.
var (
	ErrNoSuchGrant  = errors.New("attic: no such grant")
	ErrGrantRevoked = errors.New("attic: grant revoked")
)

// DAVPrefix is where the attic mounts its WebDAV tree on the appliance mux.
const DAVPrefix = "/dav"

// account is one credential: the owner or a scoped provider.
type account struct {
	username string
	password string
	scope    string // path prefix the account may touch; "/" for owner
	readOnly bool
	revoked  bool
	provider string
}

// Attic is the data-attic service.
type Attic struct {
	ownerUser string
	ownerPass string
	// quotaBytes caps total attic storage (0 = unlimited). PUTs that would
	// exceed it are refused with 507 Insufficient Storage.
	quotaBytes int
	// maxPutBytes caps a single upload body (0 = webdav default); passed
	// through to the WebDAV handler which refuses oversize PUTs with 413.
	maxPutBytes int64

	mu       sync.Mutex
	accounts map[string]*account // by username
	fs       *vfs.FS
	handler  *webdav.Handler
	metrics  *hpop.Metrics
	tracer   *hpop.Tracer
	events   *hpop.EventLog
	baseURL  string // set at start for grant encoding
	started  bool
	nextID   int
}

var _ hpop.Service = (*Attic)(nil)

// Option configures an Attic at construction.
type Option func(*Attic)

// WithQuota caps total attic storage in bytes.
func WithQuota(bytes int) Option {
	return func(a *Attic) { a.quotaBytes = bytes }
}

// WithMaxPutBytes caps a single WebDAV upload body in bytes (<= 0 leaves
// the webdav package default in place).
func WithMaxPutBytes(n int64) Option {
	return func(a *Attic) { a.maxPutBytes = n }
}

// New creates an attic owned by the given credentials.
func New(ownerUser, ownerPass string, opts ...Option) *Attic {
	a := &Attic{
		ownerUser: ownerUser,
		ownerPass: ownerPass,
		accounts:  make(map[string]*account),
		fs:        vfs.New(),
	}
	a.accounts[ownerUser] = &account{
		username: ownerUser,
		password: ownerPass,
		scope:    "/",
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Name implements hpop.Service.
func (a *Attic) Name() string { return "attic" }

// FS exposes the underlying filesystem (for backup and tests).
func (a *Attic) FS() *vfs.FS { return a.fs }

// Start implements hpop.Service: mounts the WebDAV handler and the grant
// portal endpoints.
func (a *Attic) Start(ctx *hpop.ServiceContext) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.started {
		return errors.New("attic: already started")
	}
	a.metrics = ctx.Metrics
	a.tracer = ctx.Tracer
	a.events = ctx.Events
	hopts := []webdav.HandlerOption{
		webdav.WithPrefix(DAVPrefix),
		webdav.WithAuth(a.authorize),
	}
	if a.maxPutBytes > 0 {
		hopts = append(hopts, webdav.WithMaxPutBytes(a.maxPutBytes))
	}
	a.handler = webdav.NewHandler(a.fs, hopts...)
	ctx.Mux.Handle(DAVPrefix+"/", a.instrument(a.handler))
	ctx.Mux.HandleFunc("/attic/grants", a.handleGrants)
	a.started = true
	return nil
}

// Stop implements hpop.Service.
func (a *Attic) Stop() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.started = false
	return nil
}

// Healthy implements hpop.HealthChecker: the attic is ready when started,
// and degrades when a configured quota is fully consumed (further uploads
// would all be refused with 507).
func (a *Attic) Healthy() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.started {
		return errors.New("attic: not started")
	}
	if a.quotaBytes > 0 && a.fs.TotalBytes() >= a.quotaBytes {
		return fmt.Errorf("attic: quota exhausted (%d/%d bytes)", a.fs.TotalBytes(), a.quotaBytes)
	}
	return nil
}

// SetBaseURL records the externally reachable URL, embedded in new grants.
func (a *Attic) SetBaseURL(u string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.baseURL = strings.TrimSuffix(u, "/")
}

func (a *Attic) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.metrics != nil {
			a.metrics.Add("attic.requests", 1)
			a.metrics.Add("attic.requests."+strings.ToLower(r.Method), 1)
		}
		// Quota: refuse uploads that would exceed the cap (Content-Length
		// approximation; rewrites of existing files may briefly double-count,
		// erring on the safe side).
		if a.quotaBytes > 0 && r.Method == http.MethodPut && r.ContentLength > 0 {
			if a.fs.TotalBytes()+int(r.ContentLength) > a.quotaBytes {
				if a.metrics != nil {
					a.metrics.Add("attic.quota_rejections", 1)
				}
				http.Error(w, "attic quota exceeded", http.StatusInsufficientStorage)
				return
			}
		}
		// Continue the caller's distributed trace (a friend's replicator
		// stamps its sync span onto every WebDAV request); an absent or
		// corrupted traceparent degrades to a fresh root.
		sp := a.tracer.StartRemote("attic", "dav_"+strings.ToLower(r.Method),
			hpop.ExtractTraceparent(r.Header))
		sp.SetLabel("path", r.URL.Path)
		defer sp.End()
		// The upload hot path gets its own latency histogram (friend
		// replication streams through here); everything else shares one.
		start := time.Now()
		next.ServeHTTP(w, r)
		if r.Method == http.MethodPut {
			a.metrics.Observe("attic.put_seconds", time.Since(start).Seconds())
		} else {
			a.metrics.Observe("attic.request_seconds", time.Since(start).Seconds())
		}
	})
}

// authorize is the webdav.Authorizer: the owner sees everything; provider
// accounts are confined to their scope subtree (and to reads if read-only).
func (a *Attic) authorize(user, pass, method, path string) bool {
	a.mu.Lock()
	acct, ok := a.accounts[user]
	a.mu.Unlock()
	if !ok || acct.revoked {
		return false
	}
	if subtle.ConstantTimeCompare([]byte(acct.password), []byte(pass)) != 1 {
		return false
	}
	if acct.scope != "/" {
		if path != acct.scope && !strings.HasPrefix(path, acct.scope+"/") {
			return false
		}
	}
	if acct.readOnly {
		switch method {
		case http.MethodGet, http.MethodHead, "PROPFIND", http.MethodOptions:
		default:
			return false
		}
	}
	return true
}

// GrantOption tweaks grant issuance.
type GrantOption func(*account)

// ReadOnly confines the grant to read methods.
func ReadOnly() GrantOption {
	return func(acct *account) { acct.readOnly = true }
}

// IssueGrant provisions a scoped account for a provider and returns the
// encoded grant payload (the QR-code contents). The scope directory is
// created if missing.
func (a *Attic) IssueGrant(provider, scope string, opts ...GrantOption) (string, error) {
	cleanScope, err := vfs.Clean(scope)
	if err != nil {
		return "", err
	}
	if err := a.fs.MkdirAll(cleanScope); err != nil {
		return "", fmt.Errorf("create scope: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	acct := &account{
		username: fmt.Sprintf("grant-%d-%s", a.nextID, sanitize(provider)),
		password: hex.EncodeToString(auth.NewSecret(16)),
		scope:    cleanScope,
		provider: provider,
	}
	for _, o := range opts {
		o(acct)
	}
	a.accounts[acct.username] = acct
	if a.events != nil {
		a.events.Logf("attic", "granted %s access to %s (user %s)", provider, cleanScope, acct.username)
	}
	g := auth.Grant{
		Endpoint: a.baseURL + DAVPrefix,
		Username: acct.username,
		Password: acct.password,
		Scope:    cleanScope,
		Provider: provider,
	}
	return g.Encode(), nil
}

// RevokeGrant disables a provider account by username.
func (a *Attic) RevokeGrant(username string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	acct, ok := a.accounts[username]
	if !ok || acct.scope == "/" {
		return ErrNoSuchGrant
	}
	if acct.revoked {
		return ErrGrantRevoked
	}
	acct.revoked = true
	if a.events != nil {
		a.events.Logf("attic", "revoked grant %s", username)
	}
	return nil
}

// Grants lists active provider grants as (username, provider, scope) rows.
type GrantInfo struct {
	Username string `json:"username"`
	Provider string `json:"provider"`
	Scope    string `json:"scope"`
	ReadOnly bool   `json:"readOnly"`
}

// Grants returns active (unrevoked) provider grants.
func (a *Attic) Grants() []GrantInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []GrantInfo
	for _, acct := range a.accounts {
		if acct.scope == "/" || acct.revoked {
			continue
		}
		out = append(out, GrantInfo{
			Username: acct.username,
			Provider: acct.provider,
			Scope:    acct.scope,
			ReadOnly: acct.readOnly,
		})
	}
	return out
}

// handleGrants is the portal endpoint: POST (owner-authenticated) issues a
// grant; GET lists grants.
func (a *Attic) handleGrants(w http.ResponseWriter, r *http.Request) {
	user, pass, _ := r.BasicAuth()
	if user != a.ownerUser || subtle.ConstantTimeCompare([]byte(pass), []byte(a.ownerPass)) != 1 {
		w.Header().Set("WWW-Authenticate", `Basic realm="attic-portal"`)
		http.Error(w, "owner credentials required", http.StatusUnauthorized)
		return
	}
	switch r.Method {
	case http.MethodPost:
		provider := r.FormValue("provider")
		scope := r.FormValue("scope")
		if provider == "" || scope == "" {
			http.Error(w, "provider and scope required", http.StatusBadRequest)
			return
		}
		var opts []GrantOption
		if r.FormValue("readonly") == "true" {
			opts = append(opts, ReadOnly())
		}
		token, err := a.IssueGrant(provider, scope, opts...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, token)
	case http.MethodGet:
		w.Header().Set("Content-Type", "text/plain")
		for _, g := range a.Grants() {
			fmt.Fprintf(w, "%s %s %s readonly=%v\n", g.Username, g.Provider, g.Scope, g.ReadOnly)
		}
	case http.MethodDelete:
		username := r.FormValue("username")
		if err := a.RevokeGrant(username); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// OwnerClient returns a WebDAV client with the owner's credentials against
// the given appliance base URL.
func (a *Attic) OwnerClient(applianceURL string) *webdav.Client {
	return &webdav.Client{
		BaseURL:  strings.TrimSuffix(applianceURL, "/") + DAVPrefix,
		Username: a.ownerUser,
		Password: a.ownerPass,
	}
}

// ClientFromGrant builds a WebDAV client from an encoded grant (what a
// provider's system does after scanning the QR code).
func ClientFromGrant(encoded string) (*webdav.Client, auth.Grant, error) {
	g, err := auth.DecodeGrant(encoded)
	if err != nil {
		return nil, auth.Grant{}, err
	}
	if !g.Expires.IsZero() && time.Now().After(g.Expires) {
		return nil, auth.Grant{}, auth.ErrExpired
	}
	return &webdav.Client{
		BaseURL:  g.Endpoint,
		Username: g.Username,
		Password: g.Password,
	}, g, nil
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "provider"
	}
	return b.String()
}
