package attic

import (
	"bytes"
	"io"
	"io/fs"
	"net/http"
	"path"
	"strings"
	"time"

	"hpop/internal/webdav"
)

// This file implements §IV-A "Flexible Access": "the data attic can act as
// a remote-disk and hence users can use their own local applications — such
// as word processors or spreadsheets — to work with their files." RemoteFS
// adapts a WebDAV client to Go's standard io/fs interfaces, so any code
// written against fs.FS (template loading, static serving, archivers, ...)
// works directly against the attic.

// RemoteFS is a read-view of an attic subtree implementing fs.FS,
// fs.ReadDirFS, fs.StatFS, and fs.ReadFileFS.
type RemoteFS struct {
	client *webdav.Client
	root   string
}

var (
	_ fs.FS         = (*RemoteFS)(nil)
	_ fs.ReadDirFS  = (*RemoteFS)(nil)
	_ fs.StatFS     = (*RemoteFS)(nil)
	_ fs.ReadFileFS = (*RemoteFS)(nil)
)

// NewRemoteFS views the subtree at root (e.g. "/docs") through the client.
func NewRemoteFS(c *webdav.Client, root string) *RemoteFS {
	root = "/" + strings.Trim(root, "/")
	if root == "/" {
		root = ""
	}
	return &RemoteFS{client: c, root: root}
}

// resolve maps an io/fs name (relative, no leading slash) to a DAV path.
func (r *RemoteFS) resolve(name string) (string, error) {
	if !fs.ValidPath(name) {
		return "", &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	if name == "." {
		if r.root == "" {
			return "/", nil
		}
		return r.root, nil
	}
	return r.root + "/" + name, nil
}

func davErr(op, name string, err error) error {
	if webdav.IsStatus(err, http.StatusNotFound) {
		return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
	}
	if webdav.IsStatus(err, http.StatusUnauthorized) {
		return &fs.PathError{Op: op, Path: name, Err: fs.ErrPermission}
	}
	return &fs.PathError{Op: op, Path: name, Err: err}
}

// remoteInfo implements fs.FileInfo/fs.DirEntry over a PROPFIND entry.
type remoteInfo struct {
	name    string
	size    int64
	dir     bool
	modTime time.Time
}

func (i remoteInfo) Name() string       { return i.name }
func (i remoteInfo) Size() int64        { return i.size }
func (i remoteInfo) ModTime() time.Time { return i.modTime }
func (i remoteInfo) IsDir() bool        { return i.dir }
func (i remoteInfo) Sys() any           { return nil }
func (i remoteInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o555
	}
	return 0o444
}
func (i remoteInfo) Type() fs.FileMode          { return i.Mode().Type() }
func (i remoteInfo) Info() (fs.FileInfo, error) { return i, nil }

// remoteFile is an opened attic file (fully fetched; attic objects are
// document-sized, and the wrapper-driver semantics are whole-file anyway).
type remoteFile struct {
	info   remoteInfo
	reader *bytes.Reader
}

func (f *remoteFile) Stat() (fs.FileInfo, error) { return f.info, nil }
func (f *remoteFile) Read(p []byte) (int, error) { return f.reader.Read(p) }
func (f *remoteFile) Close() error               { return nil }

// remoteDir is an opened directory handle.
type remoteDir struct {
	info    remoteInfo
	entries []fs.DirEntry
	offset  int
}

func (d *remoteDir) Stat() (fs.FileInfo, error) { return d.info, nil }
func (d *remoteDir) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.info.name, Err: fs.ErrInvalid}
}
func (d *remoteDir) Close() error { return nil }
func (d *remoteDir) ReadDir(n int) ([]fs.DirEntry, error) {
	if n <= 0 {
		out := d.entries[d.offset:]
		d.offset = len(d.entries)
		return out, nil
	}
	if d.offset >= len(d.entries) {
		return nil, io.EOF
	}
	end := d.offset + n
	if end > len(d.entries) {
		end = len(d.entries)
	}
	out := d.entries[d.offset:end]
	d.offset = end
	return out, nil
}

// Open implements fs.FS.
func (r *RemoteFS) Open(name string) (fs.File, error) {
	davPath, err := r.resolve(name)
	if err != nil {
		return nil, err
	}
	// Type first (the DAV server answers GET on collections with a plain
	// listing, so GET alone cannot distinguish files from directories).
	st, err := r.client.Propfind(davPath, "0")
	if err != nil || len(st) == 0 {
		return nil, davErr("open", name, err)
	}
	if st[0].IsDir {
		entries, pfErr := r.propfindEntries(davPath)
		if pfErr != nil {
			return nil, davErr("open", name, pfErr)
		}
		return &remoteDir{
			info:    remoteInfo{name: path.Base(name), dir: true, modTime: st[0].ModTime},
			entries: entries,
		}, nil
	}
	data, _, getErr := r.client.Get(davPath)
	if getErr != nil {
		return nil, davErr("open", name, getErr)
	}
	return &remoteFile{
		info: remoteInfo{
			name: path.Base(name), size: int64(len(data)), modTime: st[0].ModTime,
		},
		reader: bytes.NewReader(data),
	}, nil
}

// ReadFile implements fs.ReadFileFS.
func (r *RemoteFS) ReadFile(name string) ([]byte, error) {
	davPath, err := r.resolve(name)
	if err != nil {
		return nil, err
	}
	data, _, getErr := r.client.Get(davPath)
	if getErr != nil {
		return nil, davErr("readfile", name, getErr)
	}
	return data, nil
}

// ReadDir implements fs.ReadDirFS.
func (r *RemoteFS) ReadDir(name string) ([]fs.DirEntry, error) {
	davPath, err := r.resolve(name)
	if err != nil {
		return nil, err
	}
	entries, err := r.propfindEntries(davPath)
	if err != nil {
		return nil, davErr("readdir", name, err)
	}
	return entries, nil
}

// Stat implements fs.StatFS.
func (r *RemoteFS) Stat(name string) (fs.FileInfo, error) {
	davPath, err := r.resolve(name)
	if err != nil {
		return nil, err
	}
	got, err := r.client.Propfind(davPath, "0")
	if err != nil {
		return nil, davErr("stat", name, err)
	}
	if len(got) == 0 {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	e := got[0]
	return remoteInfo{
		name:    path.Base(name),
		size:    int64(e.Size),
		dir:     e.IsDir,
		modTime: e.ModTime,
	}, nil
}

// propfindEntries lists a directory's children as fs.DirEntry values.
func (r *RemoteFS) propfindEntries(davPath string) ([]fs.DirEntry, error) {
	got, err := r.client.Propfind(davPath, "1")
	if err != nil {
		return nil, err
	}
	var out []fs.DirEntry
	for i, e := range got {
		if i == 0 {
			if !e.IsDir {
				return nil, fs.ErrInvalid // a file, not a directory
			}
			continue // the collection itself
		}
		out = append(out, remoteInfo{
			name:    path.Base(strings.TrimSuffix(e.Href, "/")),
			size:    int64(e.Size),
			dir:     e.IsDir,
			modTime: e.ModTime,
		})
	}
	return out, nil
}
