package attic

import (
	"net/http"
	"testing"
	"time"

	"hpop/internal/faults"
	"hpop/internal/hpop"
)

// twoAttics boots source and destination appliances and a replicator
// pushing the source's tree into /backups/source at the destination.
func twoAttics(t *testing.T) (*Attic, *Attic, *Replicator) {
	t.Helper()
	src, _ := startAttic(t)
	dst, dstURL := startAttic(t)
	dstClient := dst.OwnerClient(dstURL)
	if err := dstClient.Mkcol("/backups"); err != nil {
		t.Fatal(err)
	}
	rep := NewReplicator(src.FS(), dstClient, "/backups/source")
	return src, dst, rep
}

func TestReplicatorInitialSync(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/photos/2026")
	src.FS().Write("/photos/cat.jpg", []byte("meow"))
	src.FS().Write("/photos/2026/dog.jpg", []byte("woof"))

	stats, err := rep.Sync("/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Uploaded != 2 {
		t.Errorf("uploaded = %d, want 2", stats.Uploaded)
	}
	got, err := dst.FS().Read("/backups/source/photos/2026/dog.jpg")
	if err != nil || string(got) != "woof" {
		t.Fatalf("replica content = %q, %v", got, err)
	}
}

func TestReplicatorIncremental(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/d")
	src.FS().Write("/d/a", []byte("1"))
	src.FS().Write("/d/b", []byte("2"))
	if _, err := rep.Sync("/"); err != nil {
		t.Fatal(err)
	}
	// Touch one file; second pass moves only that one.
	src.FS().Write("/d/a", []byte("1-updated"))
	stats, err := rep.Sync("/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Uploaded != 1 || stats.Skipped != 1 {
		t.Errorf("incremental = %+v, want 1 uploaded / 1 skipped", stats)
	}
	got, _ := dst.FS().Read("/backups/source/d/a")
	if string(got) != "1-updated" {
		t.Errorf("replica = %q", got)
	}
	// No-change pass: everything skipped.
	stats, _ = rep.Sync("/")
	if stats.Uploaded != 0 || stats.Skipped != 2 {
		t.Errorf("steady state = %+v", stats)
	}
}

func TestReplicatorPropagatesDeletes(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/d")
	src.FS().Write("/d/doomed", []byte("x"))
	if _, err := rep.Sync("/"); err != nil {
		t.Fatal(err)
	}
	if !dst.FS().Exists("/backups/source/d/doomed") {
		t.Fatal("replica missing after first sync")
	}
	src.FS().Delete("/d/doomed", false)
	stats, err := rep.Sync("/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted != 1 {
		t.Errorf("deleted = %d, want 1", stats.Deleted)
	}
	if dst.FS().Exists("/backups/source/d/doomed") {
		t.Error("deleted file survived at replica")
	}
}

func TestReplicatorScopedSync(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/in")
	src.FS().MkdirAll("/out")
	src.FS().Write("/in/f", []byte("sync me"))
	src.FS().Write("/out/g", []byte("not me"))
	if _, err := rep.Sync("/in"); err != nil {
		t.Fatal(err)
	}
	if !dst.FS().Exists("/backups/source/in/f") {
		t.Error("scoped file not replicated")
	}
	if dst.FS().Exists("/backups/source/out/g") {
		t.Error("out-of-scope file replicated")
	}
}

// TestFaultReplicatorRetriesTransient injects a 503 burst on the friend's
// attic: each remote op retries through it, the sync completes in one pass,
// and the retry counters record the injected failures.
func TestFaultReplicatorRetriesTransient(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/docs")
	src.FS().Write("/docs/f.txt", []byte("survives 5xx weather"))

	sched, err := faults.ParseSchedule("status 503 p=1 from=0 to=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(sched)
	rep.dst.HTTPClient = &http.Client{Transport: inj.Transport(nil)}
	rep.Retry = faults.Policy{MaxAttempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: -1}
	metrics := hpop.NewMetrics()
	rep.Metrics = metrics

	stats, err := rep.Sync("/")
	if err != nil {
		t.Fatalf("sync through 503 burst: %v", err)
	}
	if stats.Uploaded != 1 {
		t.Errorf("uploaded = %d, want 1", stats.Uploaded)
	}
	got, err := dst.FS().Read("/backups/source/docs/f.txt")
	if err != nil || string(got) != "survives 5xx weather" {
		t.Fatalf("replica = %q, %v", got, err)
	}
	if got := metrics.Counter("attic.replicator.retries"); got != 2 {
		t.Errorf("retries = %v, want 2 (one per injected 503)", got)
	}
	if got := metrics.Counter("attic.replicator.giveups"); got != 0 {
		t.Errorf("giveups = %v, want 0", got)
	}
}

// TestFaultReplicatorGivesUpAndResumes verifies a sync that exhausts its
// retry budget fails cleanly, counts a giveup, and the next pass resumes
// incrementally rather than starting over.
func TestFaultReplicatorGivesUpAndResumes(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/d")
	src.FS().Write("/d/a", []byte("first"))
	src.FS().Write("/d/b", []byte("second"))
	if _, err := rep.Sync("/"); err != nil {
		t.Fatal(err)
	}
	src.FS().Write("/d/a", []byte("first-v2"))
	src.FS().Write("/d/b", []byte("second-v2"))

	// Open-ended 503s: every request fails, the retry budget drains, Sync
	// errors out after the first changed file.
	sched, err := faults.ParseSchedule("status 503 p=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(sched)
	healthy := rep.dst.HTTPClient
	rep.dst.HTTPClient = &http.Client{Transport: inj.Transport(nil)}
	rep.Retry = faults.Policy{MaxAttempts: 2, Base: time.Millisecond, Max: time.Millisecond, Jitter: -1}
	metrics := hpop.NewMetrics()
	rep.Metrics = metrics
	if _, err := rep.Sync("/"); err == nil {
		t.Fatal("sync succeeded through open-ended 503s")
	}
	if metrics.Counter("attic.replicator.giveups") == 0 {
		t.Error("no giveup counted for an exhausted retry budget")
	}

	// Weather clears: the next pass pushes only what never landed.
	rep.dst.HTTPClient = healthy
	stats, err := rep.Sync("/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Uploaded != 2 {
		t.Errorf("resume uploaded = %d, want 2", stats.Uploaded)
	}
	for p, want := range map[string]string{"/d/a": "first-v2", "/d/b": "second-v2"} {
		got, err := dst.FS().Read("/backups/source" + p)
		if err != nil || string(got) != want {
			t.Errorf("replica %s = %q, %v; want %q", p, got, err, want)
		}
	}
}

func TestReplicatorRestoreRoundTrip(t *testing.T) {
	// Disaster recovery: replicate, lose the source, restore by snapshotting
	// the replica subtree back.
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/docs")
	src.FS().Write("/docs/important.txt", []byte("do not lose"))
	if _, err := rep.Sync("/"); err != nil {
		t.Fatal(err)
	}
	blob, err := dst.FS().Snapshot("/backups/source")
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := startAttic(t)
	if err := fresh.FS().RestoreSnapshot(blob, "/"); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.FS().Read("/docs/important.txt")
	if err != nil || string(got) != "do not lose" {
		t.Fatalf("restored = %q, %v", got, err)
	}
}
