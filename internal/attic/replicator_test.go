package attic

import (
	"testing"
)

// twoAttics boots source and destination appliances and a replicator
// pushing the source's tree into /backups/source at the destination.
func twoAttics(t *testing.T) (*Attic, *Attic, *Replicator) {
	t.Helper()
	src, _ := startAttic(t)
	dst, dstURL := startAttic(t)
	dstClient := dst.OwnerClient(dstURL)
	if err := dstClient.Mkcol("/backups"); err != nil {
		t.Fatal(err)
	}
	rep := NewReplicator(src.FS(), dstClient, "/backups/source")
	return src, dst, rep
}

func TestReplicatorInitialSync(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/photos/2026")
	src.FS().Write("/photos/cat.jpg", []byte("meow"))
	src.FS().Write("/photos/2026/dog.jpg", []byte("woof"))

	stats, err := rep.Sync("/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Uploaded != 2 {
		t.Errorf("uploaded = %d, want 2", stats.Uploaded)
	}
	got, err := dst.FS().Read("/backups/source/photos/2026/dog.jpg")
	if err != nil || string(got) != "woof" {
		t.Fatalf("replica content = %q, %v", got, err)
	}
}

func TestReplicatorIncremental(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/d")
	src.FS().Write("/d/a", []byte("1"))
	src.FS().Write("/d/b", []byte("2"))
	if _, err := rep.Sync("/"); err != nil {
		t.Fatal(err)
	}
	// Touch one file; second pass moves only that one.
	src.FS().Write("/d/a", []byte("1-updated"))
	stats, err := rep.Sync("/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Uploaded != 1 || stats.Skipped != 1 {
		t.Errorf("incremental = %+v, want 1 uploaded / 1 skipped", stats)
	}
	got, _ := dst.FS().Read("/backups/source/d/a")
	if string(got) != "1-updated" {
		t.Errorf("replica = %q", got)
	}
	// No-change pass: everything skipped.
	stats, _ = rep.Sync("/")
	if stats.Uploaded != 0 || stats.Skipped != 2 {
		t.Errorf("steady state = %+v", stats)
	}
}

func TestReplicatorPropagatesDeletes(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/d")
	src.FS().Write("/d/doomed", []byte("x"))
	if _, err := rep.Sync("/"); err != nil {
		t.Fatal(err)
	}
	if !dst.FS().Exists("/backups/source/d/doomed") {
		t.Fatal("replica missing after first sync")
	}
	src.FS().Delete("/d/doomed", false)
	stats, err := rep.Sync("/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted != 1 {
		t.Errorf("deleted = %d, want 1", stats.Deleted)
	}
	if dst.FS().Exists("/backups/source/d/doomed") {
		t.Error("deleted file survived at replica")
	}
}

func TestReplicatorScopedSync(t *testing.T) {
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/in")
	src.FS().MkdirAll("/out")
	src.FS().Write("/in/f", []byte("sync me"))
	src.FS().Write("/out/g", []byte("not me"))
	if _, err := rep.Sync("/in"); err != nil {
		t.Fatal(err)
	}
	if !dst.FS().Exists("/backups/source/in/f") {
		t.Error("scoped file not replicated")
	}
	if dst.FS().Exists("/backups/source/out/g") {
		t.Error("out-of-scope file replicated")
	}
}

func TestReplicatorRestoreRoundTrip(t *testing.T) {
	// Disaster recovery: replicate, lose the source, restore by snapshotting
	// the replica subtree back.
	src, dst, rep := twoAttics(t)
	src.FS().MkdirAll("/docs")
	src.FS().Write("/docs/important.txt", []byte("do not lose"))
	if _, err := rep.Sync("/"); err != nil {
		t.Fatal(err)
	}
	blob, err := dst.FS().Snapshot("/backups/source")
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := startAttic(t)
	if err := fresh.FS().RestoreSnapshot(blob, "/"); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.FS().Read("/docs/important.txt")
	if err != nil || string(got) != "do not lose" {
		t.Fatalf("restored = %q, %v", got, err)
	}
}
