package attic

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hpop/internal/faults"
	"hpop/internal/hpop"
	"hpop/internal/vfs"
	"hpop/internal/webdav"
)

// Replicator pushes a subtree of this attic into a friend's attic over
// WebDAV — live whole-attic replication (§IV-A: "replicating the entire
// HPoP to attics belonging to friends and relatives"), incremental by ETag
// so steady-state syncs move only changed files.
//
// The friend's attic is a residential box: every remote operation retries
// transient failures (network errors, 5xx) with capped backoff, and a sync
// interrupted by a blackout resumes incrementally on the next pass — the
// synced map only advances on confirmed pushes, so convergence needs no
// bookkeeping beyond retrying Sync.
type Replicator struct {
	src *vfs.FS
	dst *webdav.Client
	// destRoot is the directory inside the friend's attic that mirrors this
	// attic ("/backups/alice").
	destRoot string

	// Retry governs per-operation retries of transient remote failures.
	// The zero value applies the faults package defaults.
	Retry faults.Policy
	// Metrics, when non-nil, receives attic.replicator.retries and
	// attic.replicator.giveups counters plus the
	// attic.replicator.op_seconds histogram (one sample per remote WebDAV
	// operation, retries included).
	Metrics *hpop.Metrics
	// Tracer, when non-nil, records one span per Sync pass with upload,
	// delete, and failure child spans.
	Tracer *hpop.Tracer

	mu sync.Mutex
	// synced maps local path -> local ETag at last successful push.
	synced map[string]string

	// curTP holds the traceparent (string) of whichever span currently
	// covers remote operations — the sync span between files, the put/delete
	// child during one. The client's RequestHook stamps it onto every
	// outbound WebDAV request, so the friend's attic joins the sync trace.
	curTP atomic.Value
}

// NewReplicator mirrors src into destRoot at the destination client. The
// client's RequestHook is installed to carry the active sync span's
// traceparent on every remote operation.
func NewReplicator(src *vfs.FS, dst *webdav.Client, destRoot string) *Replicator {
	r := &Replicator{
		src:      src,
		dst:      dst,
		destRoot: "/" + strings.Trim(destRoot, "/"),
		synced:   make(map[string]string),
	}
	dst.RequestHook = func(req *http.Request) {
		if tp, _ := r.curTP.Load().(string); tp != "" {
			req.Header.Set(hpop.TraceparentHeader, tp)
		}
	}
	return r
}

// SyncStats reports one replication pass.
type SyncStats struct {
	Uploaded  int
	Skipped   int // unchanged since last pass
	Deleted   int // removed remotely because they vanished locally
	DirsMade  int
	BytesSent int64
}

// remoteOp runs one remote WebDAV operation with the retry policy.
// Non-5xx status errors are permanent and surface unchanged (callers
// special-case 405/404 by identity); network errors and 5xx retry.
func (r *Replicator) remoteOp(ctx context.Context, op func() error) error {
	start := time.Now()
	defer func() {
		r.Metrics.Observe("attic.replicator.op_seconds", time.Since(start).Seconds())
	}()
	permanent := false
	attempts, err := r.Retry.Do(ctx, func(context.Context) error {
		err := op()
		if err == nil {
			return nil
		}
		var se *webdav.StatusError
		if errors.As(err, &se) && se.Code < 500 {
			permanent = true
			return faults.Permanent(err)
		}
		permanent = false
		return err
	})
	if attempts > 1 {
		r.Metrics.Add("attic.replicator.retries", float64(attempts-1))
	}
	// A giveup is an exhausted retry budget; permanent statuses (like the
	// 405 an existing directory answers to Mkcol) surface to the caller but
	// are not remote-health events.
	if err != nil && !permanent {
		r.Metrics.Inc("attic.replicator.giveups")
	}
	return err
}

// Sync replicates the subtree at root (use "/" for the whole attic). It is
// incremental: files whose ETag matches the last successful push are
// skipped, and files that disappeared locally are deleted remotely.
func (r *Replicator) Sync(root string) (SyncStats, error) {
	return r.SyncContext(context.Background(), root)
}

// SyncContext is Sync under a context: canceling ctx stops the walk between
// files and aborts pending retries. The pass runs under pprof labels
// (service=attic.replicator, span=sync) so goroutine profiles attribute sync
// work, and every remote operation carries the sync trace's traceparent.
func (r *Replicator) SyncContext(ctx context.Context, root string) (SyncStats, error) {
	root, err := vfs.Clean(root)
	if err != nil {
		return SyncStats{}, err
	}
	sp := r.Tracer.Start("attic.replicator", "sync")
	sp.SetLabel("root", root)
	defer sp.End()
	var stats SyncStats
	defer func() {
		sp.SetLabel("uploaded", fmt.Sprint(stats.Uploaded))
		sp.SetLabel("skipped", fmt.Sprint(stats.Skipped))
		sp.SetLabel("deleted", fmt.Sprint(stats.Deleted))
	}()
	pprof.Do(ctx, pprof.Labels("service", "attic.replicator", "span", "sync"),
		func(ctx context.Context) {
			stats, err = r.syncPass(ctx, sp, root)
		})
	return stats, err
}

// setTraceparent makes sp's context the one stamped onto outbound WebDAV
// requests from here on.
func (r *Replicator) setTraceparent(sp *hpop.Span) {
	r.curTP.Store(sp.Context().Traceparent())
}

// syncPass is one replication pass under the sync span sp.
func (r *Replicator) syncPass(ctx context.Context, sp *hpop.Span, root string) (SyncStats, error) {
	var stats SyncStats
	r.setTraceparent(sp)
	defer r.curTP.Store("")
	seen := make(map[string]bool)

	// Ensure the destination root chain exists (scoped syncs start below
	// destRoot, whose ancestors the walk never visits).
	anchor := r.remotePath(root)
	parts := strings.Split(strings.Trim(anchor, "/"), "/")
	for i := 1; i < len(parts); i++ { // the last element is created by the walk
		dir := "/" + strings.Join(parts[:i], "/")
		if err := r.remoteOp(ctx, func() error { return r.dst.Mkcol(dir) }); err != nil &&
			!webdav.IsStatus(err, http.StatusMethodNotAllowed) {
			return stats, fmt.Errorf("mkcol %s: %w", dir, err)
		}
	}

	err := r.src.Walk(root, func(info vfs.Info) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		seen[info.Path] = true
		remote := r.remotePath(info.Path)
		if info.IsDir {
			if err := r.remoteOp(ctx, func() error { return r.dst.Mkcol(remote) }); err != nil {
				// 405 = already exists: fine.
				if !webdav.IsStatus(err, http.StatusMethodNotAllowed) {
					return fmt.Errorf("mkcol %s: %w", remote, err)
				}
			} else {
				stats.DirsMade++
			}
			return nil
		}
		r.mu.Lock()
		lastTag, ok := r.synced[info.Path]
		r.mu.Unlock()
		if ok && lastTag == info.ETag {
			stats.Skipped++
			return nil
		}
		data, err := r.src.Read(info.Path)
		if err != nil {
			return err
		}
		psp := sp.Child("put")
		psp.SetLabel("path", remote)
		r.setTraceparent(psp)
		if err := r.remoteOp(ctx, func() error {
			_, perr := r.dst.Put(remote, data, nil)
			return perr
		}); err != nil {
			psp.SetError(err)
			psp.End()
			r.setTraceparent(sp)
			return fmt.Errorf("put %s: %w", remote, err)
		}
		psp.End()
		r.setTraceparent(sp)
		r.mu.Lock()
		r.synced[info.Path] = info.ETag
		r.mu.Unlock()
		stats.Uploaded++
		stats.BytesSent += int64(len(data))
		return nil
	})
	if err != nil {
		return stats, err
	}

	// Propagate deletions: anything we pushed before that no longer exists.
	r.mu.Lock()
	var gone []string
	for p := range r.synced {
		inScope := p == root || strings.HasPrefix(p, strings.TrimSuffix(root, "/")+"/")
		if inScope && !seen[p] {
			gone = append(gone, p)
		}
	}
	r.mu.Unlock()
	for _, p := range gone {
		dsp := sp.Child("delete")
		dsp.SetLabel("path", r.remotePath(p))
		r.setTraceparent(dsp)
		if err := r.remoteOp(ctx, func() error { return r.dst.Delete(r.remotePath(p), nil) }); err != nil &&
			!webdav.IsStatus(err, http.StatusNotFound) {
			dsp.SetError(err)
			dsp.End()
			r.setTraceparent(sp)
			return stats, fmt.Errorf("delete %s: %w", p, err)
		}
		dsp.End()
		r.setTraceparent(sp)
		r.mu.Lock()
		delete(r.synced, p)
		r.mu.Unlock()
		stats.Deleted++
	}
	return stats, nil
}

func (r *Replicator) remotePath(local string) string {
	if local == "/" {
		return r.destRoot
	}
	return r.destRoot + local
}
