package attic

import (
	"errors"
	"testing"
	"testing/quick"
)

func ownerDriverClient(t *testing.T) (*Attic, *Driver) {
	t.Helper()
	a, base := startAttic(t)
	return a, NewDriver(a.OwnerClient(base))
}

func TestDriverOpenWriteClose(t *testing.T) {
	a, d := ownerDriverClient(t)
	f, err := d.Open("/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("quarterly numbers"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The close pushed the file to the attic.
	data, err := a.FS().Read("/report.txt")
	if err != nil || string(data) != "quarterly numbers" {
		t.Fatalf("attic content = %q, %v", data, err)
	}
}

func TestDriverOpenExistingAndAppend(t *testing.T) {
	a, d := ownerDriverClient(t)
	a.FS().Write("/log", []byte("line1\n"))
	f, err := d.Open("/log")
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Read()) != "line1\n" {
		t.Errorf("open copy = %q", f.Read())
	}
	f.Append([]byte("line2\n"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := a.FS().Read("/log")
	if string(data) != "line1\nline2\n" {
		t.Errorf("after close = %q", data)
	}
}

func TestDriverCleanCloseSkipsPut(t *testing.T) {
	a, d := ownerDriverClient(t)
	a.FS().Write("/f", []byte("v1"))
	before, _ := a.FS().Stat("/f")
	f, _ := d.Open("/f")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := a.FS().Stat("/f")
	if after.Version != before.Version {
		t.Error("clean close bumped the version (unnecessary PUT)")
	}
}

func TestDriverDoubleOpenAndClose(t *testing.T) {
	_, d := ownerDriverClient(t)
	f, err := d.Open("/x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open("/x"); err != ErrAlreadyOpen {
		t.Errorf("second open err = %v", err)
	}
	f.Close()
	if err := f.Close(); err != ErrNotOpen {
		t.Errorf("double close err = %v", err)
	}
	// Re-open after close works.
	if _, err := d.Open("/x"); err != nil {
		t.Errorf("reopen err = %v", err)
	}
}

func TestDriverConflictDetection(t *testing.T) {
	a, d := ownerDriverClient(t)
	a.FS().Write("/doc", []byte("base"))
	f, _ := d.Open("/doc")
	f.Write([]byte("mine"))
	// Remote changes while the file is open.
	a.FS().Write("/doc", []byte("theirs"))
	err := f.Close()
	if !errors.Is(err, ErrConflict) {
		t.Errorf("close err = %v, want ErrConflict", err)
	}
	// The remote copy kept the concurrent write.
	data, _ := a.FS().Read("/doc")
	if string(data) != "theirs" {
		t.Errorf("remote = %q after conflicted close", data)
	}
}

func TestDriverWithLocksSerializes(t *testing.T) {
	a, base := startAttic(t)
	d1 := NewDriver(a.OwnerClient(base))
	d1.UseLocks = true
	d2 := NewDriver(a.OwnerClient(base))
	d2.UseLocks = true

	a.FS().Write("/ledger", []byte("0"))
	f1, err := d1.Open("/ledger")
	if err != nil {
		t.Fatal(err)
	}
	// A second locking driver cannot open the same file concurrently.
	if _, err := d2.Open("/ledger"); err == nil {
		t.Fatal("second locking open succeeded under held lock")
	}
	f1.Write([]byte("1"))
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	// After release the other driver proceeds.
	f2, err := d2.Open("/ledger")
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Read()) != "1" {
		t.Errorf("second open sees %q", f2.Read())
	}
	f2.Write([]byte("2"))
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := a.FS().Read("/ledger")
	if string(data) != "2" {
		t.Errorf("final = %q", data)
	}
}

func TestOfflineStoreRoundTrip(t *testing.T) {
	a, base := startAttic(t)
	o := NewOfflineStore(a.OwnerClient(base), MergeThreeWay)
	a.FS().Write("/notes", []byte("alpha\nbeta\n"))
	if err := o.SyncDown("/notes"); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read("/notes")
	if err != nil || string(got) != "alpha\nbeta\n" {
		t.Fatalf("offline read = %q, %v", got, err)
	}
	if _, err := o.Read("/never-synced"); err != ErrNotOpen {
		t.Errorf("unsynced read err = %v", err)
	}
}

func TestOfflineReconcileFastPath(t *testing.T) {
	a, base := startAttic(t)
	o := NewOfflineStore(a.OwnerClient(base), MergeThreeWay)
	a.FS().Write("/todo", []byte("a\n"))
	o.SyncDown("/todo")
	o.Write("/todo", []byte("a\nb\n"))
	results, err := o.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Outcome != "pushed" {
		t.Errorf("results = %+v", results)
	}
	data, _ := a.FS().Read("/todo")
	if string(data) != "a\nb\n" {
		t.Errorf("remote = %q", data)
	}
	// Second reconcile: nothing dirty.
	results, _ = o.Reconcile()
	if len(results) != 0 {
		t.Errorf("idempotent reconcile = %+v", results)
	}
}

func TestOfflineReconcileThreeWayMerge(t *testing.T) {
	a, base := startAttic(t)
	o := NewOfflineStore(a.OwnerClient(base), MergeThreeWay)
	a.FS().Write("/doc", []byte("one\ntwo\nthree"))
	o.SyncDown("/doc")
	// Offline edit to line 3; concurrent remote edit to line 1.
	o.Write("/doc", []byte("one\ntwo\nTHREE"))
	a.FS().Write("/doc", []byte("ONE\ntwo\nthree"))
	results, err := o.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Outcome != "merged" {
		t.Fatalf("outcome = %s, want merged", results[0].Outcome)
	}
	data, _ := a.FS().Read("/doc")
	if string(data) != "ONE\ntwo\nTHREE" {
		t.Errorf("merged remote = %q", data)
	}
}

func TestOfflineReconcileConflictCopy(t *testing.T) {
	a, base := startAttic(t)
	o := NewOfflineStore(a.OwnerClient(base), MergeThreeWay)
	a.FS().Write("/doc", []byte("base"))
	o.SyncDown("/doc")
	// Both sides edit the same line differently: unmergeable.
	o.Write("/doc", []byte("mine"))
	a.FS().Write("/doc", []byte("theirs"))
	results, err := o.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Outcome != "conflict-copy" {
		t.Fatalf("outcome = %s", results[0].Outcome)
	}
	remote, _ := a.FS().Read("/doc")
	if string(remote) != "theirs" {
		t.Errorf("remote clobbered: %q", remote)
	}
	saved, _ := a.FS().Read("/doc.conflict")
	if string(saved) != "mine" {
		t.Errorf("conflict copy = %q", saved)
	}
	// The local cache converged to the remote version.
	local, _ := o.Read("/doc")
	if string(local) != "theirs" {
		t.Errorf("local after conflict = %q", local)
	}
}

func TestOfflineReconcileLastWriterWins(t *testing.T) {
	a, base := startAttic(t)
	o := NewOfflineStore(a.OwnerClient(base), MergeLastWriterWins)
	a.FS().Write("/doc", []byte("base"))
	o.SyncDown("/doc")
	o.Write("/doc", []byte("mine"))
	a.FS().Write("/doc", []byte("theirs"))
	results, err := o.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Outcome != "pushed" {
		t.Fatalf("outcome = %s", results[0].Outcome)
	}
	remote, _ := a.FS().Read("/doc")
	if string(remote) != "mine" {
		t.Errorf("LWW remote = %q", remote)
	}
}

func TestMergeLines(t *testing.T) {
	cases := []struct {
		name                string
		base, local, remote string
		want                string
		clean               bool
	}{
		{"disjoint edits", "a\nb\nc", "A\nb\nc", "a\nb\nC", "A\nb\nC", true},
		{"local only", "a\nb", "a\nB", "a\nb", "a\nB", true},
		{"remote only", "a\nb", "a\nb", "a\nB", "a\nB", true},
		{"converged", "a", "x", "x", "x", true},
		{"conflict", "a", "x", "y", "", false},
		{"local append", "a", "a\nb", "a", "a\nb", true},
		{"both append same", "a", "a\nb", "a\nb", "a\nb", true},
		{"both append different", "a", "a\nb", "a\nc", "", false},
	}
	for _, c := range cases {
		got, clean := MergeLines([]byte(c.base), []byte(c.local), []byte(c.remote))
		if clean != c.clean {
			t.Errorf("%s: clean = %v, want %v", c.name, clean, c.clean)
			continue
		}
		if clean && string(got) != c.want {
			t.Errorf("%s: merged = %q, want %q", c.name, got, c.want)
		}
	}
}

// Property: merging identical local and remote always succeeds and returns
// that content (modulo trailing-newline normalization).
func TestMergeLinesConvergenceProperty(t *testing.T) {
	f := func(baseRaw, editRaw []byte) bool {
		base := []byte(sanitizeText(baseRaw))
		edit := []byte(sanitizeText(editRaw))
		merged, clean := MergeLines(base, edit, edit)
		return clean && string(merged) == string(trimNL(edit))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sanitizeText(raw []byte) string {
	out := make([]byte, 0, len(raw))
	for _, b := range raw {
		if b == '\n' || (b >= 32 && b < 127) {
			out = append(out, b)
		}
	}
	return string(out)
}

func trimNL(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == '\n' {
		b = b[:len(b)-1]
	}
	return b
}
