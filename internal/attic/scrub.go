package attic

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"hpop/internal/erasure"
	"hpop/internal/hpop"
)

// DefaultScrubInterval paces the background scrubber. Residential peers rot
// quietly — disks flip bits, friends reinstall boxes — so placements must be
// re-verified on a cadence, not only at restore time.
const DefaultScrubInterval = time.Hour

// ShardState classifies one placement the scrubber examined.
type ShardState string

// Shard verdicts.
const (
	ShardOK      ShardState = "ok"
	ShardCorrupt ShardState = "corrupt" // present but checksum mismatch
	ShardMissing ShardState = "missing" // peer down or blob gone
)

// ScrubReport is one backup's scrub outcome.
type ScrubReport struct {
	Name    string `json:"name"`
	Checked int    `json:"checked"`
	Corrupt int    `json:"corrupt"`
	Missing int    `json:"missing"`
	// Repaired counts placements rebuilt from survivors and re-stored.
	Repaired int `json:"repaired"`
	// Relocated counts repaired placements that had to move to a different
	// peer because the original host is down.
	Relocated int `json:"relocated"`
	// Unrecoverable is set when more placements are bad than the plan's
	// redundancy covers; Err then wraps ErrNotEnoughUp.
	Unrecoverable bool  `json:"unrecoverable"`
	Err           error `json:"-"`
}

// ScrubSummary aggregates one full scrub pass.
type ScrubSummary struct {
	Backups []ScrubReport
}

// Totals sums the per-backup counters.
func (s ScrubSummary) Totals() (checked, corrupt, missing, repaired, relocated, unrecoverable int) {
	for _, r := range s.Backups {
		checked += r.Checked
		corrupt += r.Corrupt
		missing += r.Missing
		repaired += r.Repaired
		relocated += r.Relocated
		if r.Unrecoverable {
			unrecoverable++
		}
	}
	return
}

// Scrub walks every backup manifest, verifies each placement's ciphertext
// checksum at its peer, and repairs what it can: corrupt or missing
// placements are rebuilt from survivors (erasure decode for PlanErasure, a
// surviving copy for PlanReplicas) and re-stored — relocated to a healthy
// peer when the original host is down. CTR encryption means the scrubber
// never needs the data key: it verifies and rebuilds ciphertext only.
//
// Backups whose losses exceed the plan's redundancy are reported
// unrecoverable (Err wraps ErrNotEnoughUp) and left untouched — degraded but
// never made worse.
func (e *BackupEngine) Scrub(met *hpop.Metrics, tr *hpop.Tracer) ScrubSummary {
	sp := tr.Start("attic.scrub", "scrub_pass")
	defer sp.End()
	met.Inc("attic.scrub.passes")

	e.mu.Lock()
	names := make([]string, 0, len(e.manifests))
	for name := range e.manifests {
		names = append(names, name)
	}
	e.mu.Unlock()
	sort.Strings(names)

	var sum ScrubSummary
	for _, name := range names {
		rep := e.scrubOne(name, sp)
		met.Add("attic.scrub.checked", float64(rep.Checked))
		met.Add("attic.scrub.corrupt", float64(rep.Corrupt))
		met.Add("attic.scrub.missing", float64(rep.Missing))
		met.Add("attic.scrub.repaired", float64(rep.Repaired))
		met.Add("attic.scrub.relocated", float64(rep.Relocated))
		if rep.Unrecoverable {
			met.Inc("attic.scrub.unrecoverable")
		}
		sum.Backups = append(sum.Backups, rep)
	}
	checked, corrupt, missing, repaired, _, unrec := sum.Totals()
	sp.SetLabel("checked", strconv.Itoa(checked))
	sp.SetLabel("corrupt", strconv.Itoa(corrupt))
	sp.SetLabel("missing", strconv.Itoa(missing))
	sp.SetLabel("repaired", strconv.Itoa(repaired))
	if unrec > 0 {
		sp.SetError(fmt.Errorf("attic: %d backups unrecoverable", unrec))
	}
	return sum
}

// scrubOne verifies and repairs one backup's placements.
func (e *BackupEngine) scrubOne(name string, parent *hpop.Span) ScrubReport {
	rep := ScrubReport{Name: name}
	e.mu.Lock()
	mp, ok := e.manifests[name]
	if !ok {
		e.mu.Unlock()
		return rep
	}
	m := mp.snapshot()
	e.mu.Unlock()
	if m.plan.Kind == PlanNone || len(m.keys) == 0 {
		return rep
	}

	sp := parent.Child("scrub_backup")
	sp.SetLabel("backup", name)
	defer sp.End()

	// Classify every placement: fetch the ciphertext and verify its
	// manifest checksum. A corrupt blob is treated exactly like a missing
	// one from here on — it must not participate in reconstruction.
	blobs := make([][]byte, len(m.keys))
	var bad []int
	for i, key := range m.keys {
		rep.Checked++
		if !m.peers[i].Up() {
			rep.Missing++
			bad = append(bad, i)
			continue
		}
		data, err := m.peers[i].Get(key)
		if err != nil {
			rep.Missing++
			bad = append(bad, i)
			continue
		}
		if sumHex(data) != m.shardSums[i] {
			rep.Corrupt++
			bad = append(bad, i)
			continue
		}
		blobs[i] = data
	}
	if len(bad) == 0 {
		return rep
	}
	sp.SetLabel("bad", strconv.Itoa(len(bad)))

	// Rebuild the bad placements from survivors.
	switch m.plan.Kind {
	case PlanReplicas:
		var good []byte
		for _, b := range blobs {
			if b != nil {
				good = b
				break
			}
		}
		if good == nil {
			rep.Unrecoverable = true
			rep.Err = fmt.Errorf("attic: scrub %s: no intact replica: %w", name, ErrNotEnoughUp)
			sp.SetError(rep.Err)
			return rep
		}
		for _, idx := range bad {
			blobs[idx] = good
		}
	case PlanErasure:
		intact := 0
		for _, b := range blobs {
			if b != nil {
				intact++
			}
		}
		if intact < m.plan.K {
			rep.Unrecoverable = true
			rep.Err = fmt.Errorf("attic: scrub %s: %d of %d shards intact, need %d: %w",
				name, intact, len(m.keys), m.plan.K, ErrNotEnoughUp)
			sp.SetError(rep.Err)
			return rep
		}
		coder, err := erasure.New(m.plan.K, m.plan.M)
		if err != nil {
			rep.Err = err
			sp.SetError(err)
			return rep
		}
		if _, err := coder.Repair(blobs, bad); err != nil {
			rep.Err = err
			sp.SetError(err)
			return rep
		}
	}

	// Re-store each rebuilt placement: back to its original peer when that
	// peer is reachable, otherwise relocated to a healthy peer not already
	// holding part of this backup. RS reconstruction is deterministic, so a
	// repaired shard is byte-identical to the original and the manifest
	// checksum stays valid.
	for _, idx := range bad {
		target := m.peers[idx]
		relocated := false
		if !target.Up() {
			if alt := e.spareFor(m.peers); alt != nil {
				target = alt
				relocated = true
			} else {
				continue // nowhere to put it; next pass retries
			}
		}
		if err := target.Put(m.keys[idx], blobs[idx]); err != nil {
			rsp := sp.Child("repair_failed")
			rsp.SetLabel("key", m.keys[idx])
			rsp.SetError(err)
			rsp.End()
			continue
		}
		rep.Repaired++
		rsp := sp.Child("shard_repaired")
		rsp.SetLabel("key", m.keys[idx])
		rsp.SetLabel("peer", target.Name())
		if relocated {
			rep.Relocated++
			rsp.SetLabel("relocated", "true")
			m.peers[idx] = target
			// Publish the relocation so restores look at the new host.
			e.mu.Lock()
			if cur, ok := e.manifests[name]; ok && idx < len(cur.peers) {
				cur.peers[idx] = target
			}
			e.mu.Unlock()
		}
		rsp.End()
	}
	return rep
}

// spareFor returns an engine peer that is up and not already hosting one of
// the backup's placements, or nil.
func (e *BackupEngine) spareFor(used []PeerStore) PeerStore {
	inUse := make(map[PeerStore]bool, len(used))
	for _, p := range used {
		inUse[p] = true
	}
	for _, p := range e.peers {
		if !inUse[p] && p.Up() {
			return p
		}
	}
	return nil
}

// Scrubber runs Scrub on a cadence as an HPoP service ("attic-scrub"),
// exporting the attic.scrub.* counters and one scrub_pass span tree per
// pass. Attach an engine before Start; a Scrubber without one idles.
type Scrubber struct {
	// Interval paces passes (<= 0 means DefaultScrubInterval).
	Interval time.Duration

	mu      sync.Mutex
	engine  *BackupEngine
	metrics *hpop.Metrics
	tracer  *hpop.Tracer
	stop    chan struct{}
	done    chan struct{}
}

var _ hpop.Service = (*Scrubber)(nil)

// Attach points the scrubber at a backup engine (callable before or after
// Start; the next pass picks it up).
func (s *Scrubber) Attach(e *BackupEngine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine = e
}

// Name implements hpop.Service.
func (s *Scrubber) Name() string { return "attic-scrub" }

// Start implements hpop.Service: it launches the scrub loop and zeroes the
// attic.scrub.* counters so the full family is visible on /metrics before
// the first pass completes.
func (s *Scrubber) Start(ctx *hpop.ServiceContext) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = ctx.Metrics
	s.tracer = ctx.Tracer
	for _, c := range []string{
		"attic.scrub.passes", "attic.scrub.checked", "attic.scrub.corrupt",
		"attic.scrub.missing", "attic.scrub.repaired", "attic.scrub.relocated",
		"attic.scrub.unrecoverable",
	} {
		ctx.Metrics.Add(c, 0)
	}
	interval := s.Interval
	if interval <= 0 {
		interval = DefaultScrubInterval
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(interval, s.stop, s.done)
	return nil
}

// Stop implements hpop.Service.
func (s *Scrubber) Stop() error {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}

func (s *Scrubber) loop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.ScrubOnce()
		}
	}
}

// ScrubOnce runs one pass immediately (the loop's body; also handy for
// tests and operators). It is a no-op without an attached engine.
func (s *Scrubber) ScrubOnce() ScrubSummary {
	s.mu.Lock()
	engine, met, tr := s.engine, s.metrics, s.tracer
	s.mu.Unlock()
	if engine == nil {
		return ScrubSummary{}
	}
	return engine.Scrub(met, tr)
}
