package attic

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"

	"hpop/internal/auth"
	"hpop/internal/erasure"
)

// This file implements §IV-A "Data Availability": local/ cloud backup of
// encrypted data, whole-attic replication to friends' attics, and erasure-
// coded shard placement across peers, plus the availability arithmetic the
// E9a experiment sweeps.

// Backup errors.
var (
	ErrPeerDown      = errors.New("attic: peer unavailable")
	ErrNoSuchBackup  = errors.New("attic: no such backup")
	ErrNotEnoughUp   = errors.New("attic: too few peers up to restore")
	ErrChecksum      = errors.New("attic: restored data failed checksum")
	ErrBadPlanParams = errors.New("attic: invalid backup plan parameters")
)

// PeerStore is remote storage at one peer (a friend's attic, a NAS, or a
// cold cloud tier).
type PeerStore interface {
	// Name identifies the peer.
	Name() string
	// Put stores a blob under key.
	Put(key string, data []byte) error
	// Get retrieves a blob.
	Get(key string) ([]byte, error)
	// Up reports current reachability.
	Up() bool
}

// MemPeer is an in-memory PeerStore whose availability can be toggled —
// the churn model for availability experiments.
type MemPeer struct {
	PeerName string

	mu   sync.Mutex
	blob map[string][]byte
	down bool
}

var _ PeerStore = (*MemPeer)(nil)

// NewMemPeer creates an empty, reachable peer.
func NewMemPeer(name string) *MemPeer {
	return &MemPeer{PeerName: name, blob: make(map[string][]byte)}
}

// Name implements PeerStore.
func (m *MemPeer) Name() string { return m.PeerName }

// SetDown toggles reachability.
func (m *MemPeer) SetDown(down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down = down
}

// Up implements PeerStore.
func (m *MemPeer) Up() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.down
}

// Put implements PeerStore.
func (m *MemPeer) Put(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrPeerDown
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.blob[key] = cp
	return nil
}

// Get implements PeerStore.
func (m *MemPeer) Get(key string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, ErrPeerDown
	}
	data, ok := m.blob[key]
	if !ok {
		return nil, ErrNoSuchBackup
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// CorruptAll flips a byte in every stored blob — silent-corruption failure
// injection for restore tests.
func (m *MemPeer) CorruptAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, b := range m.blob {
		if len(b) > 0 {
			b[len(b)/2] ^= 0xFF
			m.blob[k] = b
		}
	}
}

// StoredBytes returns this peer's storage consumption (overhead accounting).
func (m *MemPeer) StoredBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, b := range m.blob {
		n += len(b)
	}
	return n
}

// PlanKind distinguishes durability strategies.
type PlanKind int

// Durability strategies from §IV-A.
const (
	// PlanNone accepts "occasional unavailability [as] an inherent reality
	// of home utilities".
	PlanNone PlanKind = iota + 1
	// PlanReplicas keeps full copies at N peers ("replicating the entire
	// HPoP to attics belonging to friends and relatives").
	PlanReplicas
	// PlanErasure stores RS(k, m) shards across k+m peers ("redundantly
	// encoding the contents — e.g., using erasure codes").
	PlanErasure
)

// Plan is a durability configuration.
type Plan struct {
	Kind PlanKind
	// N is the replica count for PlanReplicas.
	N int
	// K, M are the Reed-Solomon parameters for PlanErasure.
	K, M int
}

// StorageOverhead returns the plan's storage expansion factor.
func (p Plan) StorageOverhead() float64 {
	switch p.Kind {
	case PlanReplicas:
		return float64(p.N)
	case PlanErasure:
		return float64(p.K+p.M) / float64(p.K)
	default:
		return 0
	}
}

// Availability returns the probability the data is recoverable when each
// peer is independently up with probability peerUp.
func (p Plan) Availability(peerUp float64) float64 {
	switch p.Kind {
	case PlanReplicas:
		return 1 - math.Pow(1-peerUp, float64(p.N))
	case PlanErasure:
		// Need at least K of K+M shards: binomial tail.
		n := p.K + p.M
		var sum float64
		for i := p.K; i <= n; i++ {
			sum += binomial(n, i) * math.Pow(peerUp, float64(i)) * math.Pow(1-peerUp, float64(n-i))
		}
		return sum
	default:
		return 0
	}
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// manifest records how a backup was laid out. After Backup it is mutated
// only by the scrubber (shard relocation), always under the engine's mu;
// readers snapshot it first.
type manifest struct {
	plan     Plan
	length   int
	checksum string
	iv       []byte
	keys     []string // storage key per replica/shard
	peers    []PeerStore
	// shardSums holds the hex SHA-256 of each stored ciphertext blob
	// (replica or shard), so the scrubber can verify placements at rest
	// without the encryption key.
	shardSums []string
}

// snapshot copies the manifest so callers can work on it without holding
// the engine lock (the scrubber mutates peers on relocation).
func (m *manifest) snapshot() manifest {
	cp := *m
	cp.iv = append([]byte(nil), m.iv...)
	cp.keys = append([]string(nil), m.keys...)
	cp.peers = append([]PeerStore(nil), m.peers...)
	cp.shardSums = append([]string(nil), m.shardSums...)
	return cp
}

// sumHex is the scrubber's at-rest integrity primitive.
func sumHex(data []byte) string {
	s := sha256.Sum256(data)
	return hex.EncodeToString(s[:])
}

// BackupEngine encrypts attic content and places it at peers per a plan.
type BackupEngine struct {
	plan  Plan
	peers []PeerStore
	key   []byte // AES-256 key; data leaves the home encrypted

	mu        sync.Mutex
	manifests map[string]*manifest
	nextID    int
}

// NewBackupEngine validates the plan against the peer set and creates the
// engine with a fresh encryption key.
func NewBackupEngine(plan Plan, peers []PeerStore) (*BackupEngine, error) {
	switch plan.Kind {
	case PlanNone:
	case PlanReplicas:
		if plan.N <= 0 || plan.N > len(peers) {
			return nil, ErrBadPlanParams
		}
	case PlanErasure:
		if plan.K <= 0 || plan.M <= 0 || plan.K+plan.M > len(peers) {
			return nil, ErrBadPlanParams
		}
	default:
		return nil, ErrBadPlanParams
	}
	return &BackupEngine{
		plan:      plan,
		peers:     peers,
		key:       auth.NewSecret(32),
		manifests: make(map[string]*manifest),
	}, nil
}

func (e *BackupEngine) encrypt(data, iv []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv).XORKeyStream(out, data)
	return out, nil
}

// Backup stores one named blob per the plan. It returns an error if any
// required peer placement fails (a real engine would retry; experiments
// toggle peer state between backup and restore instead).
func (e *BackupEngine) Backup(name string, data []byte) error {
	if e.plan.Kind == PlanNone {
		return nil
	}
	sum := sha256.Sum256(data)
	iv := auth.NewSecret(aes.BlockSize)
	enc, err := e.encrypt(data, iv)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.nextID++
	id := e.nextID
	e.mu.Unlock()

	m := &manifest{
		plan:     e.plan,
		length:   len(data),
		checksum: hex.EncodeToString(sum[:]),
		iv:       iv,
	}
	switch e.plan.Kind {
	case PlanReplicas:
		encSum := sumHex(enc)
		for i := 0; i < e.plan.N; i++ {
			key := fmt.Sprintf("%s-%d-rep%d", name, id, i)
			if err := e.peers[i].Put(key, enc); err != nil {
				return fmt.Errorf("replica %d at %s: %w", i, e.peers[i].Name(), err)
			}
			m.keys = append(m.keys, key)
			m.peers = append(m.peers, e.peers[i])
			m.shardSums = append(m.shardSums, encSum)
		}
	case PlanErasure:
		coder, err := erasure.New(e.plan.K, e.plan.M)
		if err != nil {
			return err
		}
		shards, _, err := coder.EncodeBlob(enc)
		if err != nil {
			return err
		}
		for i, shard := range shards {
			key := fmt.Sprintf("%s-%d-shard%d", name, id, i)
			if err := e.peers[i].Put(key, shard); err != nil {
				return fmt.Errorf("shard %d at %s: %w", i, e.peers[i].Name(), err)
			}
			m.keys = append(m.keys, key)
			m.peers = append(m.peers, e.peers[i])
			m.shardSums = append(m.shardSums, sumHex(shard))
		}
	}
	e.mu.Lock()
	e.manifests[name] = m
	e.mu.Unlock()
	return nil
}

// Restore retrieves a named blob from whatever peers are currently up,
// decrypts, and verifies its checksum.
func (e *BackupEngine) Restore(name string) ([]byte, error) {
	e.mu.Lock()
	mp, ok := e.manifests[name]
	if !ok {
		e.mu.Unlock()
		return nil, ErrNoSuchBackup
	}
	m := mp.snapshot()
	e.mu.Unlock()
	var enc []byte
	switch m.plan.Kind {
	case PlanReplicas:
		var lastErr error = ErrNotEnoughUp
		for i, key := range m.keys {
			if !m.peers[i].Up() {
				continue
			}
			data, err := m.peers[i].Get(key)
			if err != nil {
				lastErr = err
				continue
			}
			enc = data
			break
		}
		if enc == nil {
			return nil, lastErr
		}
	case PlanErasure:
		coder, err := erasure.New(m.plan.K, m.plan.M)
		if err != nil {
			return nil, err
		}
		shards := make([][]byte, len(m.keys))
		up := 0
		for i, key := range m.keys {
			if !m.peers[i].Up() {
				continue
			}
			data, err := m.peers[i].Get(key)
			if err != nil {
				continue
			}
			shards[i] = data
			up++
		}
		if up < m.plan.K {
			return nil, ErrNotEnoughUp
		}
		// Encrypted blob length: shards are padded; recover via stored
		// plaintext length (ciphertext is the same length as plaintext
		// under CTR).
		enc, err = coder.DecodeBlob(shards, m.length)
		if err != nil {
			return nil, err
		}
	default:
		return nil, ErrNoSuchBackup
	}
	plain, err := e.encrypt(enc, m.iv) // CTR: encrypt == decrypt
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(plain)
	if hex.EncodeToString(sum[:]) != m.checksum {
		return nil, ErrChecksum
	}
	return plain, nil
}

// Recoverable reports whether a restore would currently succeed, without
// moving data (used by the availability sweep).
func (e *BackupEngine) Recoverable(name string) bool {
	e.mu.Lock()
	mp, ok := e.manifests[name]
	if !ok {
		e.mu.Unlock()
		return false
	}
	m := mp.snapshot()
	e.mu.Unlock()
	up := 0
	for _, p := range m.peers {
		if p.Up() {
			up++
		}
	}
	switch m.plan.Kind {
	case PlanReplicas:
		return up >= 1
	case PlanErasure:
		return up >= m.plan.K
	default:
		return false
	}
}
