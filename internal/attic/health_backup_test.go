package attic

import (
	"bytes"
	"math"
	"testing"
	"time"

	"hpop/internal/sim"
)

func TestHealthRecordsDualWrite(t *testing.T) {
	a, _ := startAttic(t)
	token, err := a.IssueGrant("Clinic A", "/health/clinic-a")
	if err != nil {
		t.Fatal(err)
	}
	clinic := NewProviderSystem("Clinic A")
	if err := clinic.LinkPatient("pat-1", token); err != nil {
		t.Fatal(err)
	}
	rec := HealthRecord{
		PatientID: "pat-1",
		RecordID:  "visit-001",
		Kind:      "visit",
		Body:      "annual checkup, all normal",
		CreatedAt: time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC),
	}
	if err := clinic.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	// Provider kept its regulatory copy.
	local := clinic.LocalRecords("pat-1")
	if len(local) != 1 || local[0].RecordID != "visit-001" {
		t.Fatalf("local records = %+v", local)
	}
	// And the attic got a duplicate.
	data, err := a.FS().Read("/health/clinic-a/visit-001.json")
	if err != nil {
		t.Fatalf("attic copy missing: %v", err)
	}
	if !bytes.Contains(data, []byte("annual checkup")) {
		t.Errorf("attic copy = %s", data)
	}
}

func TestHealthRecordsBackfillOnLink(t *testing.T) {
	a, _ := startAttic(t)
	clinic := NewProviderSystem("Clinic B")
	// Records written BEFORE the patient links their attic.
	clinic.WriteRecord(HealthRecord{PatientID: "p", RecordID: "old-1", Kind: "lab"})
	clinic.WriteRecord(HealthRecord{PatientID: "p", RecordID: "old-2", Kind: "lab"})
	token, _ := a.IssueGrant("Clinic B", "/health/clinic-b")
	if err := clinic.LinkPatient("p", token); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"old-1", "old-2"} {
		if !a.FS().Exists("/health/clinic-b/" + id + ".json") {
			t.Errorf("backfill missed %s", id)
		}
	}
}

func TestHealthRecordsAggregation(t *testing.T) {
	a, base := startAttic(t)
	tokenA, _ := a.IssueGrant("Clinic A", "/health/clinic-a")
	tokenB, _ := a.IssueGrant("Lab X", "/health/lab-x")
	clinicA := NewProviderSystem("Clinic A")
	labX := NewProviderSystem("Lab X")
	clinicA.LinkPatient("p", tokenA)
	labX.LinkPatient("p", tokenB)
	clinicA.WriteRecord(HealthRecord{
		PatientID: "p", RecordID: "v1", Kind: "visit",
		CreatedAt: time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC),
	})
	labX.WriteRecord(HealthRecord{
		PatientID: "p", RecordID: "l1", Kind: "lab",
		CreatedAt: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	// The patient aggregates their complete cross-provider history from
	// their own attic.
	recs, err := AggregateRecords(a.OwnerClient(base), []string{"/health/clinic-a", "/health/lab-x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("aggregated = %d records", len(recs))
	}
	// Sorted by time: lab first.
	if recs[0].RecordID != "l1" || recs[1].RecordID != "v1" {
		t.Errorf("order = %s, %s", recs[0].RecordID, recs[1].RecordID)
	}
	if recs[0].Provider != "Lab X" {
		t.Errorf("provider stamp = %q", recs[0].Provider)
	}
	// Missing scope is skipped, not fatal.
	recs, err = AggregateRecords(a.OwnerClient(base), []string{"/health/ghost", "/health/lab-x"})
	if err != nil || len(recs) != 1 {
		t.Errorf("with missing scope: %d, %v", len(recs), err)
	}
}

func TestHealthRecordsPendingQueue(t *testing.T) {
	a, _ := startAttic(t)
	token, _ := a.IssueGrant("Clinic", "/health/c")
	clinic := NewProviderSystem("Clinic")
	clinic.LinkPatient("p", token)
	// Simulate attic unreachable by revoking, then writing.
	g, _ := decodeGrantForTest(token)
	a.RevokeGrant(g.Username)
	clinic.WriteRecord(HealthRecord{PatientID: "p", RecordID: "r1"})
	if clinic.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", clinic.PendingCount())
	}
	// Flush still fails while revoked.
	if n := clinic.FlushPending(); n != 0 {
		t.Errorf("flush while revoked = %d", n)
	}
	// Re-grant the same path under a new account and re-link.
	token2, _ := a.IssueGrant("Clinic", "/health/c")
	clinic.LinkPatient("p", token2)
	if n := clinic.FlushPending(); n != 1 {
		t.Errorf("flush after relink = %d, want 1", n)
	}
	if clinic.PendingCount() != 0 {
		t.Errorf("pending after flush = %d", clinic.PendingCount())
	}
}

func decodeGrantForTest(token string) (struct{ Username string }, error) {
	c, g, err := ClientFromGrant(token)
	_ = c
	return struct{ Username string }{g.Username}, err
}

func TestBackupPlanValidation(t *testing.T) {
	peers := []PeerStore{NewMemPeer("a"), NewMemPeer("b")}
	if _, err := NewBackupEngine(Plan{Kind: PlanReplicas, N: 3}, peers); err != ErrBadPlanParams {
		t.Errorf("too many replicas err = %v", err)
	}
	if _, err := NewBackupEngine(Plan{Kind: PlanErasure, K: 2, M: 1}, peers); err != ErrBadPlanParams {
		t.Errorf("too many shards err = %v", err)
	}
	if _, err := NewBackupEngine(Plan{Kind: PlanKind(9)}, peers); err != ErrBadPlanParams {
		t.Errorf("bogus plan err = %v", err)
	}
	if _, err := NewBackupEngine(Plan{Kind: PlanNone}, nil); err != nil {
		t.Errorf("PlanNone err = %v", err)
	}
}

func TestBackupRestoreReplicas(t *testing.T) {
	peers := []PeerStore{NewMemPeer("p0"), NewMemPeer("p1"), NewMemPeer("p2")}
	e, err := NewBackupEngine(Plan{Kind: PlanReplicas, N: 3}, peers)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the whole attic tarball")
	if err := e.Backup("attic-2026-07-04", payload); err != nil {
		t.Fatal(err)
	}
	// Data at peers is encrypted: no peer holds the plaintext.
	for _, p := range peers {
		mp := p.(*MemPeer)
		for _, blob := range mp.blob {
			if bytes.Contains(blob, []byte("attic tarball")) {
				t.Fatal("plaintext leaked to peer")
			}
		}
	}
	// Two peers die; restore still works from the third.
	peers[0].(*MemPeer).SetDown(true)
	peers[1].(*MemPeer).SetDown(true)
	got, err := e.Restore("attic-2026-07-04")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("restore = %q, %v", got, err)
	}
	// All dead: unrecoverable.
	peers[2].(*MemPeer).SetDown(true)
	if _, err := e.Restore("attic-2026-07-04"); err == nil {
		t.Error("restore succeeded with all peers down")
	}
	if e.Recoverable("attic-2026-07-04") {
		t.Error("Recoverable true with all peers down")
	}
}

func TestBackupRestoreErasure(t *testing.T) {
	var peers []PeerStore
	for i := 0; i < 6; i++ {
		peers = append(peers, NewMemPeer("p"))
	}
	e, err := NewBackupEngine(Plan{Kind: PlanErasure, K: 4, M: 2}, peers)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := e.Backup("blob", payload); err != nil {
		t.Fatal(err)
	}
	// Any 2 peers can die (m=2).
	peers[1].(*MemPeer).SetDown(true)
	peers[4].(*MemPeer).SetDown(true)
	got, err := e.Restore("blob")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("restore with 2 losses failed: %v", err)
	}
	if !e.Recoverable("blob") {
		t.Error("Recoverable false with k shards up")
	}
	// A third loss breaks it.
	peers[0].(*MemPeer).SetDown(true)
	if _, err := e.Restore("blob"); err != ErrNotEnoughUp {
		t.Errorf("restore with 3 losses err = %v, want ErrNotEnoughUp", err)
	}
}

func TestBackupErasureStorageCheaperThanReplicas(t *testing.T) {
	// RS(4,2) tolerates 2 losses at 1.5x storage; 3 replicas tolerate 2
	// losses at 3x. The ablation DESIGN.md calls out.
	rs := Plan{Kind: PlanErasure, K: 4, M: 2}
	rep := Plan{Kind: PlanReplicas, N: 3}
	if rs.StorageOverhead() >= rep.StorageOverhead() {
		t.Errorf("RS overhead %v not below replica overhead %v",
			rs.StorageOverhead(), rep.StorageOverhead())
	}
}

func TestPlanAvailabilityMath(t *testing.T) {
	rep := Plan{Kind: PlanReplicas, N: 2}
	if got, want := rep.Availability(0.9), 0.99; math.Abs(got-want) > 1e-12 {
		t.Errorf("replica availability = %v, want %v", got, want)
	}
	rs := Plan{Kind: PlanErasure, K: 2, M: 1}
	// Need >=2 of 3 up at p=0.9: 3*0.81*0.1 + 0.729 = 0.972.
	if got, want := rs.Availability(0.9), 0.972; math.Abs(got-want) > 1e-12 {
		t.Errorf("RS availability = %v, want %v", got, want)
	}
	if (Plan{Kind: PlanNone}).Availability(0.9) != 0 {
		t.Error("PlanNone availability must be 0")
	}
}

func TestAvailabilityMatchesSimulation(t *testing.T) {
	// Monte-carlo: Recoverable() frequency under random churn must match
	// the closed-form Availability.
	rng := sim.NewRNG(77)
	plan := Plan{Kind: PlanErasure, K: 3, M: 2}
	var peers []PeerStore
	for i := 0; i < 5; i++ {
		peers = append(peers, NewMemPeer("p"))
	}
	e, _ := NewBackupEngine(plan, peers)
	if err := e.Backup("x", []byte("payload-for-availability")); err != nil {
		t.Fatal(err)
	}
	const pUp = 0.8
	const trials = 20000
	up := 0
	for i := 0; i < trials; i++ {
		for _, p := range peers {
			p.(*MemPeer).SetDown(!rng.Bool(pUp))
		}
		if e.Recoverable("x") {
			up++
		}
	}
	got := float64(up) / trials
	want := plan.Availability(pUp)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("simulated availability %.4f vs closed form %.4f", got, want)
	}
}

func TestRestoreUnknownName(t *testing.T) {
	e, _ := NewBackupEngine(Plan{Kind: PlanReplicas, N: 1}, []PeerStore{NewMemPeer("p")})
	if _, err := e.Restore("ghost"); err != ErrNoSuchBackup {
		t.Errorf("err = %v", err)
	}
	if e.Recoverable("ghost") {
		t.Error("ghost recoverable")
	}
}

func TestBackupPlanNoneIsNoop(t *testing.T) {
	e, _ := NewBackupEngine(Plan{Kind: PlanNone}, nil)
	if err := e.Backup("x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Restore("x"); err != ErrNoSuchBackup {
		t.Errorf("PlanNone restore err = %v", err)
	}
}

func TestRestoreDetectsCorruptedShard(t *testing.T) {
	// Failure injection: a peer silently corrupts its stored shard. The
	// restore's end-to-end checksum must catch it.
	peers := []PeerStore{NewMemPeer("a"), NewMemPeer("b")}
	e, err := NewBackupEngine(Plan{Kind: PlanReplicas, N: 2}, peers)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Backup("blob", []byte("precious data")); err != nil {
		t.Fatal(err)
	}
	// Corrupt every replica in place.
	for _, p := range peers {
		mp := p.(*MemPeer)
		mp.CorruptAll()
	}
	if _, err := e.Restore("blob"); err != ErrChecksum {
		t.Errorf("restore of corrupted replicas err = %v, want ErrChecksum", err)
	}
}
