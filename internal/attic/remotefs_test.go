package attic

import (
	"errors"
	"io"
	"io/fs"
	"sort"
	"testing"
	"testing/fstest"
)

func remoteFixture(t *testing.T) *RemoteFS {
	t.Helper()
	a, base := startAttic(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(a.FS().MkdirAll("/docs/reports"))
	_, err := a.FS().Write("/docs/readme.txt", []byte("welcome home"))
	must(err)
	_, err = a.FS().Write("/docs/reports/q1.csv", []byte("a,b\n1,2\n"))
	must(err)
	_, err = a.FS().Write("/docs/reports/q2.csv", []byte("a,b\n3,4\n"))
	must(err)
	return NewRemoteFS(a.OwnerClient(base), "/docs")
}

func TestRemoteFSConformance(t *testing.T) {
	// The stdlib's own conformance harness: walks, opens, stats, and
	// cross-checks everything an fs.FS must do.
	rfs := remoteFixture(t)
	if err := fstest.TestFS(rfs, "readme.txt", "reports/q1.csv", "reports/q2.csv"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteFSReadFile(t *testing.T) {
	rfs := remoteFixture(t)
	data, err := rfs.ReadFile("readme.txt")
	if err != nil || string(data) != "welcome home" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if _, err := rfs.ReadFile("nope.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing err = %v", err)
	}
}

func TestRemoteFSOpenAndRead(t *testing.T) {
	rfs := remoteFixture(t)
	f, err := rfs.Open("reports/q1.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil || string(data) != "a,b\n1,2\n" {
		t.Fatalf("read = %q, %v", data, err)
	}
	info, err := f.Stat()
	if err != nil || info.Size() != 8 || info.IsDir() {
		t.Errorf("stat = %+v, %v", info, err)
	}
}

func TestRemoteFSReadDir(t *testing.T) {
	rfs := remoteFixture(t)
	entries, err := rfs.ReadDir("reports")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "q1.csv" {
		t.Errorf("entries = %v", names)
	}
	// Root listing includes the subdirectory.
	rootEntries, err := rfs.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	foundDir := false
	for _, e := range rootEntries {
		if e.Name() == "reports" && e.IsDir() {
			foundDir = true
		}
	}
	if !foundDir {
		t.Errorf("root entries = %v", rootEntries)
	}
}

func TestRemoteFSWalkDir(t *testing.T) {
	rfs := remoteFixture(t)
	var visited []string
	err := fs.WalkDir(rfs, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		visited = append(visited, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 5 { // ., readme.txt, reports, q1, q2
		t.Errorf("visited = %v", visited)
	}
}

func TestRemoteFSInvalidNames(t *testing.T) {
	rfs := remoteFixture(t)
	for _, bad := range []string{"/abs", "../escape", ""} {
		if _, err := rfs.Open(bad); err == nil {
			t.Errorf("Open(%q) succeeded", bad)
		}
	}
}

func TestRemoteFSPermissionMapping(t *testing.T) {
	a, base := startAttic(t)
	a.FS().MkdirAll("/private")
	a.FS().Write("/private/x", []byte("secret"))
	// A client with wrong credentials sees fs.ErrPermission.
	bad := a.OwnerClient(base)
	bad.Password = "wrong"
	rfs := NewRemoteFS(bad, "/private")
	if _, err := rfs.ReadFile("x"); !errors.Is(err, fs.ErrPermission) {
		t.Errorf("err = %v, want fs.ErrPermission", err)
	}
}
