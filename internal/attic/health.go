package attic

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"hpop/internal/webdav"
)

// This file implements the health-records exemplar from §IV-A-1: "the
// health record system at each provider would interact with each person's
// data attic ... the storage driver at the provider's site would duplicate
// writes to both local copy and the patient's remote attic."

// HealthRecord is one medical record entry.
type HealthRecord struct {
	Provider  string    `json:"provider"`
	PatientID string    `json:"patientId"`
	RecordID  string    `json:"recordId"`
	Kind      string    `json:"kind"` // "visit", "lab", "prescription", ...
	Body      string    `json:"body"`
	CreatedAt time.Time `json:"createdAt"`
}

// Path returns the record's location inside the patient's granted scope.
func (r HealthRecord) Path(scope string) string {
	return fmt.Sprintf("%s/%s.json", scope, r.RecordID)
}

// ProviderSystem models a medical provider's record system. It keeps its own
// local copy of every record (regulatory requirement) and, once linked to a
// patient's attic via a grant, duplicates each write to the attic.
type ProviderSystem struct {
	Name string

	mu      sync.Mutex
	local   map[string][]HealthRecord // patientID -> records (provider's store)
	links   map[string]*patientLink   // patientID -> attic link
	pending map[string][]HealthRecord // writes queued while the attic is unreachable
}

type patientLink struct {
	client *webdav.Client
	scope  string
}

// NewProviderSystem creates an empty provider record system.
func NewProviderSystem(name string) *ProviderSystem {
	return &ProviderSystem{
		Name:    name,
		local:   make(map[string][]HealthRecord),
		links:   make(map[string]*patientLink),
		pending: make(map[string][]HealthRecord),
	}
}

// LinkPatient consumes a grant token (the QR code the patient presented) and
// associates the patient with their attic. Any records written before
// linking are backfilled to the attic immediately.
func (p *ProviderSystem) LinkPatient(patientID, grantToken string) error {
	client, g, err := ClientFromGrant(grantToken)
	if err != nil {
		return fmt.Errorf("link patient %s: %w", patientID, err)
	}
	p.mu.Lock()
	p.links[patientID] = &patientLink{client: client, scope: g.Scope}
	backfill := append([]HealthRecord(nil), p.local[patientID]...)
	p.mu.Unlock()
	for _, rec := range backfill {
		if err := p.pushRecord(patientID, rec); err != nil {
			return fmt.Errorf("backfill %s: %w", rec.RecordID, err)
		}
	}
	return nil
}

// WriteRecord stores a record in the provider's local system and duplicates
// it to the patient's attic if linked (the dual-write storage driver). If
// the attic is unreachable the write is queued and retried by FlushPending.
func (p *ProviderSystem) WriteRecord(rec HealthRecord) error {
	rec.Provider = p.Name
	p.mu.Lock()
	p.local[rec.PatientID] = append(p.local[rec.PatientID], rec)
	_, linked := p.links[rec.PatientID]
	p.mu.Unlock()
	if !linked {
		return nil
	}
	if err := p.pushRecord(rec.PatientID, rec); err != nil {
		p.mu.Lock()
		p.pending[rec.PatientID] = append(p.pending[rec.PatientID], rec)
		p.mu.Unlock()
		return nil // local write succeeded; attic push queued
	}
	return nil
}

// FlushPending retries queued attic pushes, returning how many succeeded.
func (p *ProviderSystem) FlushPending() int {
	p.mu.Lock()
	queued := p.pending
	p.pending = make(map[string][]HealthRecord)
	p.mu.Unlock()
	n := 0
	for patientID, recs := range queued {
		for _, rec := range recs {
			if err := p.pushRecord(patientID, rec); err != nil {
				p.mu.Lock()
				p.pending[patientID] = append(p.pending[patientID], rec)
				p.mu.Unlock()
				continue
			}
			n++
		}
	}
	return n
}

// PendingCount returns how many attic pushes are queued.
func (p *ProviderSystem) PendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, recs := range p.pending {
		n += len(recs)
	}
	return n
}

// LocalRecords returns the provider's own copy for a patient (the
// regulatory copy).
func (p *ProviderSystem) LocalRecords(patientID string) []HealthRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]HealthRecord, len(p.local[patientID]))
	copy(out, p.local[patientID])
	return out
}

func (p *ProviderSystem) pushRecord(patientID string, rec HealthRecord) error {
	p.mu.Lock()
	link, ok := p.links[patientID]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("patient %s not linked", patientID)
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = link.client.Put(rec.Path(link.scope), body, nil)
	return err
}

// AggregateRecords reads a patient's full cross-provider history from their
// own attic — the paper's point: "the patient can provide immediate access
// to their complete records as they see fit". The caller supplies an
// owner-scoped (or emergency-granted) client and the list of provider
// scopes to aggregate.
func AggregateRecords(c *webdav.Client, scopes []string) ([]HealthRecord, error) {
	var out []HealthRecord
	for _, scope := range scopes {
		entries, err := c.Propfind(scope, "1")
		if err != nil {
			if webdav.IsStatus(err, 404) {
				continue
			}
			return nil, fmt.Errorf("list %s: %w", scope, err)
		}
		for _, e := range entries {
			if e.IsDir {
				continue
			}
			data, _, err := c.Get(pathFromHref(e.Href))
			if err != nil {
				return nil, fmt.Errorf("fetch %s: %w", e.Href, err)
			}
			var rec HealthRecord
			if err := json.Unmarshal(data, &rec); err != nil {
				continue // non-record file in the scope
			}
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.Before(out[j].CreatedAt) })
	return out, nil
}

// pathFromHref strips the DAV prefix from a PROPFIND href.
func pathFromHref(href string) string {
	if len(href) >= len(DAVPrefix) && href[:len(DAVPrefix)] == DAVPrefix {
		return href[len(DAVPrefix):]
	}
	return href
}
