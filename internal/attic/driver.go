package attic

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hpop/internal/webdav"
)

// This file implements the client-side drivers from §IV-A:
//
//   - Driver: the open/close wrapper. The paper replaces an application's
//     open/close with wrappers (via the linker's --wrap) that GET the file
//     from the attic on open, let the application work on a local copy, and
//     PUT it back on close. Driver is that wrapper as a Go API.
//
//   - OfflineStore: the "offline mode" with reconciliation upon reconnection.

// Driver errors.
var (
	ErrAlreadyOpen = errors.New("attic: file already open")
	ErrNotOpen     = errors.New("attic: file not open")
	ErrConflict    = errors.New("attic: remote changed concurrently")
)

// File is an open attic file: a local working copy bound to a remote path.
type File struct {
	drv      *Driver
	path     string
	buf      []byte
	baseETag string
	dirty    bool
	lockTok  string
	closed   bool
}

// Driver is the open/close wrapper around a WebDAV client.
type Driver struct {
	client *webdav.Client
	// UseLocks makes Open take a WebDAV lock and Close release it,
	// serializing multi-client access as the paper's prototype does. Without
	// locks, Close uses optimistic If-Match and reports ErrConflict.
	UseLocks bool

	mu   sync.Mutex
	open map[string]*File
}

// NewDriver wraps a WebDAV client.
func NewDriver(c *webdav.Client) *Driver {
	return &Driver{client: c, open: make(map[string]*File)}
}

// Open fetches the remote file into a local working copy ("a GET request
// for the file to the data attic. Upon receiving the file, the driver
// creates a local copy and opens it for the application"). Opening a
// non-existent file creates an empty working copy.
func (d *Driver) Open(path string) (*File, error) {
	d.mu.Lock()
	if _, exists := d.open[path]; exists {
		d.mu.Unlock()
		return nil, ErrAlreadyOpen
	}
	d.mu.Unlock()

	f := &File{drv: d, path: path}
	if d.UseLocks {
		tok, err := d.client.Lock(path, "attic-driver", 0)
		if err != nil {
			return nil, fmt.Errorf("lock %s: %w", path, err)
		}
		f.lockTok = tok
	}
	data, etag, err := d.client.Get(path)
	switch {
	case err == nil:
		f.buf = data
		f.baseETag = etag
	case webdav.IsStatus(err, 404):
		// New file.
	default:
		if f.lockTok != "" {
			_ = d.client.Unlock(path, f.lockTok)
		}
		return nil, err
	}
	d.mu.Lock()
	d.open[path] = f
	d.mu.Unlock()
	return f, nil
}

// Read returns the current working-copy contents.
func (f *File) Read() []byte {
	out := make([]byte, len(f.buf))
	copy(out, f.buf)
	return out
}

// Write replaces the working-copy contents ("subsequent accesses to the
// file will execute on the local copy").
func (f *File) Write(data []byte) {
	f.buf = make([]byte, len(data))
	copy(f.buf, data)
	f.dirty = true
}

// Append adds data to the working copy.
func (f *File) Append(data []byte) {
	f.buf = append(f.buf, data...)
	f.dirty = true
}

// Close pushes the working copy back to the attic if modified ("which will
// be sent back to the attic on close") and releases any lock. A clean close
// of an unmodified file performs no PUT.
func (f *File) Close() error {
	if f.closed {
		return ErrNotOpen
	}
	f.closed = true
	d := f.drv
	d.mu.Lock()
	delete(d.open, f.path)
	d.mu.Unlock()

	var putErr error
	if f.dirty {
		hdr := map[string]string{}
		if f.lockTok != "" {
			hdr["If"] = "(<" + f.lockTok + ">)"
		} else if f.baseETag != "" {
			hdr["If-Match"] = f.baseETag
		} else {
			hdr["If-None-Match"] = "*"
		}
		_, err := d.client.Put(f.path, f.buf, hdr)
		switch {
		case err == nil:
		case webdav.IsStatus(err, 412):
			putErr = fmt.Errorf("%w: %s", ErrConflict, f.path)
		default:
			putErr = err
		}
	}
	if f.lockTok != "" {
		if err := d.client.Unlock(f.path, f.lockTok); err != nil && putErr == nil {
			putErr = err
		}
	}
	return putErr
}

// ---- Offline store ----

// MergeStrategy selects conflict handling at reconciliation.
type MergeStrategy int

// Strategies, mirroring the paper's note that "a plethora of approaches
// exist" for reconciling offline changes.
const (
	// MergeLastWriterWins overwrites the remote with the local copy.
	MergeLastWriterWins MergeStrategy = iota + 1
	// MergeThreeWay merges line-by-line against the common base; overlapping
	// edits fall back to a conflict copy.
	MergeThreeWay
	// MergeConflictCopy never merges: conflicting local edits are saved as
	// "<name>.conflict" next to the remote file.
	MergeConflictCopy
)

// cachedFile is one entry in the offline store.
type cachedFile struct {
	data     []byte
	baseData []byte // remote content at last sync (merge base)
	baseETag string
	dirty    bool
}

// OfflineStore is a client-side cache supporting disconnected operation
// against the attic, like cloud apps' "offline mode".
type OfflineStore struct {
	client   *webdav.Client
	strategy MergeStrategy

	mu    sync.Mutex
	files map[string]*cachedFile
}

// NewOfflineStore creates an empty offline cache over the client.
func NewOfflineStore(c *webdav.Client, strategy MergeStrategy) *OfflineStore {
	if strategy == 0 {
		strategy = MergeThreeWay
	}
	return &OfflineStore{client: c, strategy: strategy, files: make(map[string]*cachedFile)}
}

// SyncDown populates/refreshes the cache for a path while connected.
func (o *OfflineStore) SyncDown(path string) error {
	data, etag, err := o.client.Get(path)
	if err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	base := make([]byte, len(data))
	copy(base, data)
	o.files[path] = &cachedFile{data: data, baseData: base, baseETag: etag}
	return nil
}

// Read returns cached contents (available offline).
func (o *OfflineStore) Read(path string) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.files[path]
	if !ok {
		return nil, ErrNotOpen
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Write updates the cached copy locally (possible while offline).
func (o *OfflineStore) Write(path string, data []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.files[path]
	if !ok {
		f = &cachedFile{}
		o.files[path] = f
	}
	f.data = make([]byte, len(data))
	copy(f.data, data)
	f.dirty = true
}

// ReconcileResult describes what happened to one dirty file.
type ReconcileResult struct {
	Path string
	// Outcome is one of "pushed", "merged", "conflict-copy", "unchanged".
	Outcome string
}

// Reconcile pushes dirty files upon reconnection. Files whose remote copy
// is unchanged push directly; concurrent remote edits are resolved per the
// store's strategy. Results report per-file outcomes.
func (o *OfflineStore) Reconcile() ([]ReconcileResult, error) {
	o.mu.Lock()
	paths := make([]string, 0, len(o.files))
	for p, f := range o.files {
		if f.dirty {
			paths = append(paths, p)
		}
	}
	o.mu.Unlock()
	sort.Strings(paths)

	var results []ReconcileResult
	for _, p := range paths {
		res, err := o.reconcileOne(p)
		if err != nil {
			return results, fmt.Errorf("reconcile %s: %w", p, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func (o *OfflineStore) reconcileOne(p string) (ReconcileResult, error) {
	o.mu.Lock()
	f := o.files[p]
	local := append([]byte(nil), f.data...)
	base := append([]byte(nil), f.baseData...)
	baseETag := f.baseETag
	o.mu.Unlock()

	// Fast path: optimistic conditional PUT against the base etag.
	newTag, err := o.client.Put(p, local, map[string]string{"If-Match": baseETag})
	if err == nil {
		o.finish(p, local, newTag)
		return ReconcileResult{Path: p, Outcome: "pushed"}, nil
	}
	if !webdav.IsStatus(err, 412) {
		return ReconcileResult{}, err
	}

	// Remote changed while offline: fetch theirs and resolve.
	theirs, theirTag, err := o.client.Get(p)
	if err != nil {
		return ReconcileResult{}, err
	}
	switch o.strategy {
	case MergeLastWriterWins:
		newTag, err := o.client.Put(p, local, map[string]string{"If-Match": theirTag})
		if err != nil {
			return ReconcileResult{}, err
		}
		o.finish(p, local, newTag)
		return ReconcileResult{Path: p, Outcome: "pushed"}, nil
	case MergeThreeWay:
		merged, clean := MergeLines(base, local, theirs)
		if clean {
			newTag, err := o.client.Put(p, merged, map[string]string{"If-Match": theirTag})
			if err != nil {
				return ReconcileResult{}, err
			}
			o.finish(p, merged, newTag)
			return ReconcileResult{Path: p, Outcome: "merged"}, nil
		}
		fallthrough
	default: // MergeConflictCopy or dirty three-way merge
		conflictPath := p + ".conflict"
		if _, err := o.client.Put(conflictPath, local, nil); err != nil {
			return ReconcileResult{}, err
		}
		o.finish(p, theirs, theirTag)
		return ReconcileResult{Path: p, Outcome: "conflict-copy"}, nil
	}
}

func (o *OfflineStore) finish(p string, data []byte, etag string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	base := append([]byte(nil), data...)
	o.files[p] = &cachedFile{data: data, baseData: base, baseETag: etag}
}

// MergeLines performs a line-oriented three-way merge of local and remote
// edits against a common base. It returns the merged content and whether
// the merge was clean (no overlapping hunk).
func MergeLines(base, local, remote []byte) ([]byte, bool) {
	b := splitLines(base)
	l := splitLines(local)
	r := splitLines(remote)

	// Positional three-way merge over the padded line range: for each line
	// index, take whichever side changed relative to base; if both changed
	// differently, the merge is conflicted. Insertions at the tail extend
	// the result. This is deliberately simple — the attic's reconciliation
	// needs "changed vs base" semantics, not a full diff3.
	maxLen := len(b)
	if len(l) > maxLen {
		maxLen = len(l)
	}
	if len(r) > maxLen {
		maxLen = len(r)
	}
	get := func(s []string, i int) (string, bool) {
		if i < len(s) {
			return s[i], true
		}
		return "", false
	}
	var out []string
	for i := 0; i < maxLen; i++ {
		bv, bok := get(b, i)
		lv, lok := get(l, i)
		rv, rok := get(r, i)
		lChanged := !lok && bok || lok && (!bok || lv != bv)
		rChanged := !rok && bok || rok && (!bok || rv != bv)
		switch {
		case !lChanged && !rChanged:
			if bok {
				out = append(out, bv)
			}
		case lChanged && !rChanged:
			if lok {
				out = append(out, lv)
			}
		case rChanged && !lChanged:
			if rok {
				out = append(out, rv)
			}
		default: // both changed
			if lok == rok && lv == rv {
				if lok {
					out = append(out, lv) // converged edit
				}
				continue // converged deletion otherwise
			}
			return nil, false
		}
	}
	return []byte(strings.Join(out, "\n")), true
}

func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	return strings.Split(string(bytes.TrimRight(data, "\n")), "\n")
}
