package attic

import (
	"bytes"
	"testing"
	"time"
)

func TestCloudNeverSeesPlaintext(t *testing.T) {
	vault := NewCloudVault()
	escrow := NewKeyEscrow(vault, time.Minute, nil)
	secretText := []byte("my tax documents: very personal content")
	if err := escrow.Upload("taxes.pdf", secretText); err != nil {
		t.Fatal(err)
	}
	ct, err := vault.Get("taxes.pdf")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, []byte("personal")) {
		t.Fatal("plaintext leaked to the cloud")
	}
}

func TestKeyReleaseRoundTrip(t *testing.T) {
	vault := NewCloudVault()
	escrow := NewKeyEscrow(vault, time.Minute, nil)
	plain := []byte("shared spreadsheet contents")
	escrow.Upload("sheet", plain)
	escrow.AuthorizeApp("docs-app")

	lease, err := escrow.RequestKey("docs-app", "sheet")
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := vault.Get("sheet")
	got, err := lease.Decrypt(ct, time.Now())
	if err != nil || !bytes.Equal(got, plain) {
		t.Fatalf("decrypt = %q, %v", got, err)
	}
	// The release was audited.
	log := escrow.AuditLog()
	if len(log) != 1 || log[0].App != "docs-app" || log[0].Blob != "sheet" {
		t.Errorf("audit = %+v", log)
	}
}

func TestUnauthorizedAndRevokedApps(t *testing.T) {
	escrow := NewKeyEscrow(NewCloudVault(), time.Minute, nil)
	escrow.Upload("f", []byte("x"))
	if _, err := escrow.RequestKey("stranger", "f"); err == nil {
		t.Error("unauthorized app got a key")
	}
	escrow.AuthorizeApp("app")
	if _, err := escrow.RequestKey("app", "f"); err != nil {
		t.Fatal(err)
	}
	escrow.RevokeApp("app")
	if _, err := escrow.RequestKey("app", "f"); err == nil {
		t.Error("revoked app got a key")
	}
	if _, err := escrow.RequestKey("app", "ghost"); err == nil {
		t.Error("key for missing blob")
	}
}

func TestLeaseExpiry(t *testing.T) {
	current := time.Now()
	escrow := NewKeyEscrow(NewCloudVault(), 10*time.Second, func() time.Time { return current })
	escrow.Upload("f", []byte("data"))
	escrow.AuthorizeApp("app")
	lease, err := escrow.RequestKey("app", "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lease.Decrypt([]byte("ct"), current.Add(11*time.Second)); err != ErrLeaseExpired {
		t.Errorf("expired lease err = %v", err)
	}
}

// TestAtticVsEncryptedCloud demonstrates the paper's point: the escrow
// alternative "can help address the issue of data control, [but] the data
// attic concept addresses additional issues — e.g., allowing changes and
// shared access by multiple actors, through multiple applications, while
// maintaining a single source for a file."
func TestAtticVsEncryptedCloud(t *testing.T) {
	// Encrypted-cloud path: two applications each fetch ciphertext + key
	// and hold independent plaintext copies; writes require re-encrypting
	// and re-uploading the whole blob — there is no single mediated source.
	vault := NewCloudVault()
	escrow := NewKeyEscrow(vault, time.Minute, nil)
	escrow.Upload("doc", []byte("v1"))
	escrow.AuthorizeApp("app-a")
	escrow.AuthorizeApp("app-b")
	for _, app := range []string{"app-a", "app-b"} {
		lease, err := escrow.RequestKey(app, "doc")
		if err != nil {
			t.Fatal(err)
		}
		ct, _ := vault.Get("doc")
		if _, err := lease.Decrypt(ct, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// Each app independently "edits" and re-uploads: last writer silently
	// wins at the vault; nothing mediates.
	escrow.Upload("doc", []byte("app-a's version"))
	escrow.Upload("doc", []byte("app-b's version"))
	ct, _ := vault.Get("doc")
	lease, _ := escrow.RequestKey("app-a", "doc")
	final, _ := lease.Decrypt(ct, time.Now())
	if string(final) != "app-b's version" {
		t.Fatalf("vault state = %q", final)
	}
	// The attic path: both applications operate on ONE mediated copy with
	// locks; a concurrent second writer is refused rather than silently
	// clobbered (covered extensively in driver tests). Here we just assert
	// the contrast is real: the escrow design performed 3 whole-blob
	// fetches for 2 readers + 1 re-reader.
	if vault.GetCount != 3 {
		t.Errorf("cloud fetches = %d", vault.GetCount)
	}
}
