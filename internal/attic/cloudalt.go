package attic

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"sync"
	"time"

	"hpop/internal/auth"
)

// This file implements the alternative design §IV-A discusses and the data
// attic improves on: "simply let the cloud store user data in encrypted
// form. The home network would then provide the external application the
// key to decrypt the data when an authorized user requests a particular
// service. The user would trust the application to not keep the key beyond
// the immediate use."
//
// CloudVault is the cloud side (ciphertext only); KeyEscrow is the
// HPoP-resident key-release service with per-release auditing, expiry, and
// revocation. The comparison test demonstrates why the paper still prefers
// the attic: key release grants whole-file plaintext to the application,
// multi-writer sharing needs a single source the cloud copy can't provide,
// and provider switching means re-uploading ciphertext.

// Cloud/escrow errors.
var (
	ErrNoSuchBlob   = errors.New("attic: no such cloud blob")
	ErrKeyDenied    = errors.New("attic: key release denied")
	ErrLeaseExpired = errors.New("attic: key lease expired")
	ErrAppRevoked   = errors.New("attic: application revoked")
)

// CloudVault stores only ciphertext; it never sees keys or plaintext.
type CloudVault struct {
	mu    sync.Mutex
	blobs map[string][]byte
	// GetCount tallies fetches, for data-movement accounting in the
	// comparison experiment.
	GetCount int
}

// NewCloudVault returns an empty vault.
func NewCloudVault() *CloudVault {
	return &CloudVault{blobs: make(map[string][]byte)}
}

// Put stores ciphertext under a name.
func (v *CloudVault) Put(name string, ciphertext []byte) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cp := make([]byte, len(ciphertext))
	copy(cp, ciphertext)
	v.blobs[name] = cp
}

// Get fetches ciphertext.
func (v *CloudVault) Get(name string) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	data, ok := v.blobs[name]
	if !ok {
		return nil, ErrNoSuchBlob
	}
	v.GetCount++
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// KeyLease is one granted decryption capability.
type KeyLease struct {
	Blob    string
	App     string
	Key     []byte
	IV      []byte
	Expires time.Time
}

// ReleaseRecord is one audit-log entry.
type ReleaseRecord struct {
	Blob string
	App  string
	At   time.Time
}

// KeyEscrow is the HPoP-side service that encrypts user data before cloud
// upload and releases short-lived decryption keys to authorized
// applications, keeping an audit trail.
type KeyEscrow struct {
	vault *CloudVault
	ttl   time.Duration
	now   func() time.Time

	mu      sync.Mutex
	keys    map[string]keyMaterial // blob -> key material
	allowed map[string]bool        // app -> authorized
	audit   []ReleaseRecord
}

type keyMaterial struct {
	key []byte
	iv  []byte
}

// NewKeyEscrow creates an escrow bound to a vault, with key leases valid
// for ttl (default 5 minutes).
func NewKeyEscrow(vault *CloudVault, ttl time.Duration, now func() time.Time) *KeyEscrow {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &KeyEscrow{
		vault:   vault,
		ttl:     ttl,
		now:     now,
		keys:    make(map[string]keyMaterial),
		allowed: make(map[string]bool),
	}
}

// AuthorizeApp allows an application to request keys.
func (e *KeyEscrow) AuthorizeApp(app string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.allowed[app] = true
}

// RevokeApp withdraws an application's authorization.
func (e *KeyEscrow) RevokeApp(app string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.allowed, app)
}

// Upload encrypts plaintext with a fresh key and stores the ciphertext in
// the cloud. The key never leaves the escrow except through RequestKey.
func (e *KeyEscrow) Upload(name string, plaintext []byte) error {
	key := auth.NewSecret(32)
	iv := auth.NewSecret(aes.BlockSize)
	block, err := aes.NewCipher(key)
	if err != nil {
		return err
	}
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)
	e.vault.Put(name, ct)
	e.mu.Lock()
	e.keys[name] = keyMaterial{key: key, iv: iv}
	e.mu.Unlock()
	return nil
}

// RequestKey releases a time-limited decryption lease to an authorized
// application and records the release in the audit log.
func (e *KeyEscrow) RequestKey(app, blob string) (*KeyLease, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.allowed[app] {
		return nil, fmt.Errorf("%w: %s", ErrAppRevoked, app)
	}
	km, ok := e.keys[blob]
	if !ok {
		return nil, ErrNoSuchBlob
	}
	e.audit = append(e.audit, ReleaseRecord{Blob: blob, App: app, At: e.now()})
	key := make([]byte, len(km.key))
	copy(key, km.key)
	iv := make([]byte, len(km.iv))
	copy(iv, km.iv)
	return &KeyLease{
		Blob:    blob,
		App:     app,
		Key:     key,
		IV:      iv,
		Expires: e.now().Add(e.ttl),
	}, nil
}

// AuditLog returns a copy of all key releases — the accountability the
// escrow design offers (and the attic makes unnecessary).
func (e *KeyEscrow) AuditLog() []ReleaseRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ReleaseRecord, len(e.audit))
	copy(out, e.audit)
	return out
}

// Decrypt applies a lease to ciphertext, enforcing lease expiry at time
// now (applications would do this client-side; the expiry check models the
// "trust the application to not keep the key beyond the immediate use"
// contract).
func (l *KeyLease) Decrypt(ciphertext []byte, now time.Time) ([]byte, error) {
	if now.After(l.Expires) {
		return nil, ErrLeaseExpired
	}
	block, err := aes.NewCipher(l.Key)
	if err != nil {
		return nil, err
	}
	pt := make([]byte, len(ciphertext))
	cipher.NewCTR(block, l.IV).XORKeyStream(pt, ciphertext)
	return pt, nil
}
